(* Non-blocking Patricia trie over variable-length keys — the extension
   described in the paper's conclusion (Section VI).

   Same algorithm as {!Patricia} (flag descriptors, helping, one help
   routine for all updates, atomic replace), but keys and labels are
   {!Bitkey.Bitstr} bit strings of unbounded length instead of l-bit
   machine integers.  Keys are stored under the 0->01 / 1->10 / $->11
   encoding, which makes distinct keys mutually prefix-free and bounds
   them strictly between the sentinel leaves 00 and 111.

   As the paper notes, with unbounded keys searches remain non-blocking
   (they terminate: the trie's height at any moment is bounded by the
   longest key currently stored) but are no longer wait-free, since
   concurrent insertions of ever-longer keys can extend a search path.

   Snapshots use the same generation-stamped-holder design as
   {!Patricia} (see the [Snapshots] section there for the full
   correctness argument): the root sits behind a holder, every update
   descriptor validates the holder at a single decision CAS, updates
   renew stale internals on descent, and [snapshot] swings the holder
   to a copied root in O(1) of the key count. *)

module B = Bitkey.Bitstr

type info = Unflag of unit ref | Flag of flag | Snap of snap

and node = Leaf of leaf | Internal of internal

and leaf = { key : B.t; linfo : info Atomic.t }

and internal = {
  label : B.t;
  children : node Atomic.t array;
  iinfo : info Atomic.t;
  gen : unit ref; (* generation stamp, as in {!Patricia} *)
}

and holder = { epoch : int; hgen : unit ref; hroot : internal }

and decision = Pending | Commit | Abort

and flag = {
  flag_nodes : internal array;
  old_infos : info array;
  unflag_nodes : internal array;
  pnodes : internal array;
  old_children : node array;
  new_children : node array;
  rmv_leaf : leaf option;
  decision : decision Atomic.t;
  fholder : holder;
  fcell : holder Atomic.t;
}

and snap = { s_old : holder; s_new : holder; s_cell : holder Atomic.t }

(* Descent-cost accounting, the [Patricia.stats] subset that makes
   sense here (the contention counters stay PAT-only; the descriptor
   carries no stats field).  Striped like every hot-path counter. *)
type stats = {
  descent_find : Obs.Counter.t;
  descent_insert : Obs.Counter.t;
  descent_delete : Obs.Counter.t;
  descent_replace : Obs.Counter.t;
  descent_searches : Obs.Counter.t;
  descent_depth : Obs.Histogram.t;
}

type t = {
  holder : holder Atomic.t;
  slots : info option Atomic.t list Atomic.t;
  slot_key : info option Atomic.t option ref Domain.DLS.key;
  stats : stats option;
}

let make_stats () =
  {
    descent_find = Obs.Counter.create ();
    descent_insert = Obs.Counter.create ();
    descent_delete = Obs.Counter.create ();
    descent_replace = Obs.Counter.create ();
    descent_searches = Obs.Counter.create ();
    descent_depth = Obs.Histogram.create ();
  }

(* Disabled cost: one branch, as for [Patricia.bump]. *)
let[@inline] descent (stats : stats option) (field : stats -> Obs.Counter.t) d =
  match stats with
  | None -> ()
  | Some s ->
      Obs.Counter.add (field s) d;
      Obs.Counter.incr s.descent_searches;
      Obs.Histogram.record s.descent_depth d

let fresh_unflag () = Unflag (ref ())
let new_leaf key = { key; linfo = Atomic.make (fresh_unflag ()) }

(* The calling domain's published-descriptor slot for [t] (see
   {!Patricia.my_slot}): an update publishes its descriptor here before
   flagging and clears it after completion, so a snapshot can resolve
   every descriptor that might still commit against the frozen
   generation. *)
let my_slot t =
  let r = Domain.DLS.get t.slot_key in
  match !r with
  | Some s -> s
  | None ->
      let s = Atomic.make None in
      let rec push () =
        let l = Atomic.get t.slots in
        if not (Atomic.compare_and_set t.slots l (s :: l)) then push ()
      in
      push ();
      r := Some s;
      s

(* Fault-injection sites and retry backoff, as in {!Patricia}: one
   atomic load and an untaken branch per site unless a chaos policy or
   the contention backoff is enabled. *)
let[@inline] chaos_point (s : Chaos.site) =
  if Atomic.get Chaos.active then Chaos.hit s

let[@inline] retry_pause bo =
  chaos_point Chaos.Retry;
  if Chaos.Backoff.enabled () then Chaos.Backoff.wait bo else bo

(* Flight recorder (lib/obs), as in {!Patricia}: one closed span per
   update attempt into the global trace recorder plus per-cause retry
   attribution, each site costing one atomic load and an untaken branch
   while disabled.  Bit-string keys are folded to an int with
   [Hashtbl.hash] for the trace's [key] field — a stable per-key tag,
   not a reversible encoding. *)
let[@inline] span_start () =
  if Atomic.get Obs.Trace.active then Obs.Clock.now_ns () else 0

let span_emit kind ~key ~ok ~attempt ~site ~t0 =
  match Obs.Trace.recorder () with
  | Some tr ->
      Obs.Trace.emit_span tr kind ~key:(Hashtbl.hash key) ~ok
        ~retries:(attempt - 1) ~attempt ~site ~t0_ns:t0
  | None -> ()

let[@inline] attempt_done kind ~key ~attempt ~t0 ~site ok =
  if t0 <> 0 then span_emit kind ~key ~ok ~attempt ~site ~t0;
  Obs.Attribution.op_complete ();
  ok

let[@inline] attempt_retry kind ~key ~attempt ~t0 cause =
  Obs.Attribution.mark cause ~attempt;
  if t0 <> 0 then
    span_emit kind ~key ~ok:false ~attempt
      ~site:(Obs.Attribution.cause_name cause)
      ~t0

let[@inline] flagged = function
  | Flag _ | Snap _ -> true
  | Unflag _ -> false

let[@inline] retry_cause2 a b =
  if flagged a || flagged b then Obs.Attribution.Flagged_ancestor
  else Obs.Attribution.Conflict

let node_info = function Leaf l -> l.linfo | Internal i -> i.iinfo
let node_label = function Leaf l -> l.key | Internal i -> i.label

let name = "PAT-VLK"

let create ?(record_stats = false) () =
  let gen = ref () in
  let root =
    {
      label = B.empty;
      children =
        [|
          Atomic.make (Leaf (new_leaf B.sentinel_lo));
          Atomic.make (Leaf (new_leaf B.sentinel_hi));
        |];
      iinfo = Atomic.make (fresh_unflag ());
      gen;
    }
  in
  {
    holder = Atomic.make { epoch = 0; hgen = gen; hroot = root };
    slots = Atomic.make [];
    slot_key = Domain.DLS.new_key (fun () -> ref None);
    stats = (if record_stats then Some (make_stats ()) else None);
  }

(* ------------------------------------------------------------------ *)
(* Search *)

let logically_removed = function
  | Unflag _ | Snap _ -> false
  | Flag f ->
      let p = f.pnodes.(0) and old = f.old_children.(0) in
      not
        (Atomic.get p.children.(0) == old || Atomic.get p.children.(1) == old)

type search_result = {
  gp : internal option;
  p : internal;
  p_node : node;
  node : node;
  gp_info : info option;
  p_info : info;
  rmvd : bool;
  depth : int;
      (** child pointers followed from the root to reach [node]
          (the root's direct child is depth 1) *)
}

let search_from (root : internal) v =
  let rec go gp gp_info (p : internal) p_boxed p_info d =
    let node = Atomic.get p.children.(B.next_bit p.label v) in
    match node with
    | Internal i when B.is_proper_prefix i.label v ->
        go (Some p) (Some p_info) i node (Atomic.get i.iinfo) (d + 1)
    | _ ->
        let rmvd =
          match node with
          | Leaf l -> logically_removed (Atomic.get l.linfo)
          | Internal _ -> false
        in
        { gp; p; p_node = p_boxed; node; gp_info; p_info; rmvd; depth = d + 1 }
  in
  go None None root (Internal root) (Atomic.get root.iinfo) 0

let search t v = search_from (Atomic.get t.holder).hroot v

let key_in_trie node v rmvd =
  match node with Leaf l -> B.equal l.key v && not rmvd | Internal _ -> false

(* ------------------------------------------------------------------ *)
(* help / newFlag / createNode — identical in structure to Patricia *)

let flag_phase fi f =
  let n = Array.length f.flag_nodes in
  let rec loop i =
    if i >= n then true
    else begin
      let x = f.flag_nodes.(i) in
      chaos_point Chaos.Flag_cas;
      ignore (Atomic.compare_and_set x.iinfo f.old_infos.(i) fi);
      if Atomic.get x.iinfo == fi then loop (i + 1) else false
    end
  in
  loop 0

(* Complete an in-flight snapshot: swing the holder (idempotent) and
   release the old root's info field. *)
let help_snap (si : info) (s : snap) =
  ignore (Atomic.compare_and_set s.s_cell s.s_old s.s_new);
  ignore (Atomic.compare_and_set s.s_old.hroot.iinfo si (fresh_unflag ()))

let child_cas_phase f =
  Array.iteri
    (fun i p ->
      let nc = f.new_children.(i) in
      let k = B.next_bit p.label (node_label nc) in
      chaos_point Chaos.Child_cas;
      if not (Atomic.compare_and_set p.children.(k) f.old_children.(i) nc) then
        Obs.Attribution.mark Obs.Attribution.Child_cas_lost ~attempt:0;
      chaos_point Chaos.After_child_cas)
    f.pnodes

let rec help (fi : info) : bool =
  match fi with
  | Unflag _ -> assert false
  | Snap s ->
      help_snap fi s;
      true
  | Flag f -> help_flag fi f

and help_flag (fi : info) (f : flag) : bool =
  let do_child_cas = flag_phase fi f in
  (* The decision CAS: commit only if every flag landed *and* the
     owning trie's holder is still the generation this attempt searched
     — see {!Patricia.help_flag}. *)
  (if Atomic.get f.decision = Pending then
     let d =
       if do_child_cas && Atomic.get f.fcell == f.fholder then Commit
       else Abort
     in
     ignore (Atomic.compare_and_set f.decision Pending d));
  match Atomic.get f.decision with
  | Commit ->
      (match f.rmv_leaf with Some l -> Atomic.set l.linfo fi | None -> ());
      child_cas_phase f;
      chaos_point Chaos.Unflag;
      for i = Array.length f.unflag_nodes - 1 downto 0 do
        ignore
          (Atomic.compare_and_set f.unflag_nodes.(i).iinfo fi (fresh_unflag ()))
      done;
      true
  | Abort ->
      chaos_point Chaos.Backtrack;
      Obs.Attribution.mark Obs.Attribution.Backtrack ~attempt:0;
      for i = Array.length f.flag_nodes - 1 downto 0 do
        ignore
          (Atomic.compare_and_set f.flag_nodes.(i).iinfo fi (fresh_unflag ()))
      done;
      false
  | Pending -> assert false

and new_flag ~fh ~cell ~flags ~unflag ~pnodes ~old_children ~new_children
    ~rmv_leaf =
  match
    List.find_opt
      (fun (_, i) -> match i with Flag _ | Snap _ -> true | _ -> false)
      flags
  with
  | Some (_, old) ->
      ignore (help old);
      None
  | None -> (
      let rec dedup acc = function
        | [] -> Some (List.rev acc)
        | (n, i) :: rest -> (
            match List.find_opt (fun (n', _) -> n' == n) acc with
            | Some (_, i') -> if i' == i then dedup acc rest else None
            | None -> dedup ((n, i) :: acc) rest)
      in
      match dedup [] flags with
      | None -> None
      | Some flags ->
          let flags =
            List.sort
              (fun ((a : internal), _) (b, _) -> B.compare a.label b.label)
              flags
          in
          let dedup_nodes l =
            List.fold_left
              (fun acc n ->
                if List.exists (fun n' -> n' == n) acc then acc else n :: acc)
              [] l
            |> List.rev
          in
          Some
            (Flag
               {
                 flag_nodes = Array.of_list (List.map fst flags);
                 old_infos = Array.of_list (List.map snd flags);
                 unflag_nodes = Array.of_list (dedup_nodes unflag);
                 pnodes = Array.of_list pnodes;
                 old_children = Array.of_list old_children;
                 new_children = Array.of_list new_children;
                 rmv_leaf;
                 decision = Atomic.make Pending;
                 fholder = fh;
                 fcell = cell;
               }))

and create_node ~gen n1 n2 info =
  let l1 = node_label n1 and l2 = node_label n2 in
  if B.is_prefix l1 l2 || B.is_prefix l2 l1 then begin
    (match info with
    | Some ((Flag _ | Snap _) as fi) -> ignore (help fi)
    | _ -> ());
    None
  end
  else
    let lcp = B.lcp l1 l2 in
    let d1 = B.next_bit lcp l1 in
    let c0, c1 = if d1 = 0 then (n1, n2) else (n2, n1) in
    Some
      {
        label = lcp;
        children = [| Atomic.make c0; Atomic.make c1 |];
        iinfo = Atomic.make (fresh_unflag ());
        gen;
      }

let copy_node ~gen = function
  | Leaf l -> Leaf (new_leaf l.key)
  | Internal i ->
      Internal
        {
          label = i.label;
          children =
            [|
              Atomic.make (Atomic.get i.children.(0));
              Atomic.make (Atomic.get i.children.(1));
            |];
          iinfo = Atomic.make (fresh_unflag ());
          gen;
        }

(* Publication wrapper and copy-on-descent renewal — the update-side
   snapshot machinery, as in {!Patricia.run_own} / [search_renew]. *)

let run_own t fi =
  let slot = my_slot t in
  Atomic.set slot (Some fi);
  let r = help fi in
  Atomic.set slot None;
  r

let renew_child t (h : holder) (p : internal) p_info c_boxed (i : internal) =
  match Atomic.get i.iinfo with
  | (Flag _ | Snap _) as fi -> ignore (help fi)
  | Unflag _ as ii -> (
      let copy =
        Internal
          {
            label = i.label;
            children =
              [|
                Atomic.make (Atomic.get i.children.(0));
                Atomic.make (Atomic.get i.children.(1));
              |];
            iinfo = Atomic.make (fresh_unflag ());
            gen = h.hgen;
          }
      in
      match
        new_flag ~fh:h ~cell:t.holder
          ~flags:[ (p, p_info); (i, ii) ]
          ~unflag:[ p ] ~pnodes:[ p ] ~old_children:[ c_boxed ]
          ~new_children:[ copy ] ~rmv_leaf:None
      with
      | Some fi -> ignore (run_own t fi)
      | None -> ())

(* [None]: the descent hit a stale-generation internal and (at most)
   renewed it; the caller restarts from a fresh holder read. *)
let search_renew t (h : holder) v =
  let rec go gp gp_info (p : internal) p_boxed p_info d =
    let node = Atomic.get p.children.(B.next_bit p.label v) in
    match node with
    | Internal i when B.is_proper_prefix i.label v ->
        if i.gen == h.hgen then
          go (Some p) (Some p_info) i node (Atomic.get i.iinfo) (d + 1)
        else begin
          renew_child t h p p_info node i;
          None
        end
    | _ ->
        let rmvd =
          match node with
          | Leaf l -> logically_removed (Atomic.get l.linfo)
          | Internal _ -> false
        in
        Some
          { gp; p; p_node = p_boxed; node; gp_info; p_info; rmvd; depth = d + 1 }
  in
  go None None h.hroot (Internal h.hroot) (Atomic.get h.hroot.iinfo) 0

(* ------------------------------------------------------------------ *)
(* Operations over raw encoded keys *)

let check_key v =
  if
    B.is_prefix v B.sentinel_lo
    || B.is_prefix B.sentinel_lo v
    || B.is_prefix v B.sentinel_hi
    || B.is_prefix B.sentinel_hi v
  then invalid_arg "Patricia_vlk: key collides with a sentinel"

let member_key t v =
  check_key v;
  let r = search t v in
  descent t.stats (fun s -> s.descent_find) r.depth;
  key_in_trie r.node v r.rmvd

let sibling_index (p : internal) v = 1 - B.next_bit p.label v

let insert_key t v =
  check_key v;
  let rec attempt bo n =
    let t0 = span_start () in
    let h = Atomic.get t.holder in
    match search_renew t h v with
    | None ->
        attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
          Obs.Attribution.Conflict;
        attempt (retry_pause bo) (n + 1)
    | Some r ->
        descent t.stats (fun s -> s.descent_insert) r.depth;
        if key_in_trie r.node v r.rmvd then
          attempt_done Obs.Trace.Insert ~key:v ~attempt:n ~t0 ~site:"present"
            false
        else begin
          let node_info_v = Atomic.get (node_info r.node) in
          let node_copy = copy_node ~gen:h.hgen r.node in
          match
            create_node ~gen:h.hgen node_copy (Leaf (new_leaf v))
              (Some node_info_v)
          with
          | None ->
              attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                (if flagged node_info_v then Obs.Attribution.Flagged_ancestor
                 else Obs.Attribution.Conflict);
              attempt (retry_pause bo) (n + 1)
          | Some new_node -> (
              let fi =
                match r.node with
                | Internal i ->
                    new_flag ~fh:h ~cell:t.holder
                      ~flags:[ (r.p, r.p_info); (i, node_info_v) ]
                      ~unflag:[ r.p ] ~pnodes:[ r.p ] ~old_children:[ r.node ]
                      ~new_children:[ Internal new_node ] ~rmv_leaf:None
                | Leaf _ ->
                    new_flag ~fh:h ~cell:t.holder
                      ~flags:[ (r.p, r.p_info) ]
                      ~unflag:[ r.p ] ~pnodes:[ r.p ] ~old_children:[ r.node ]
                      ~new_children:[ Internal new_node ] ~rmv_leaf:None
              in
              match fi with
              | Some fi when run_own t fi ->
                  attempt_done Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    ~site:"applied" true
              | Some _ ->
                  attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    Obs.Attribution.Flag_cas_lost;
                  attempt (retry_pause bo) (n + 1)
              | None ->
                  attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    (retry_cause2 r.p_info node_info_v);
                  attempt (retry_pause bo) (n + 1))
        end
  in
  attempt Chaos.Backoff.init 1

let delete_key t v =
  check_key v;
  let rec attempt bo n =
    let t0 = span_start () in
    let h = Atomic.get t.holder in
    match search_renew t h v with
    | None ->
        attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
          Obs.Attribution.Conflict;
        attempt (retry_pause bo) (n + 1)
    | Some r ->
        descent t.stats (fun s -> s.descent_delete) r.depth;
        if not (key_in_trie r.node v r.rmvd) then
          attempt_done Obs.Trace.Delete ~key:v ~attempt:n ~t0 ~site:"absent"
            false
        else begin
          let node_sibling = Atomic.get r.p.children.(sibling_index r.p v) in
          match (r.gp, r.gp_info) with
          | Some gp, Some gp_info -> (
              match
                new_flag ~fh:h ~cell:t.holder
                  ~flags:[ (gp, gp_info); (r.p, r.p_info) ]
                  ~unflag:[ gp ] ~pnodes:[ gp ] ~old_children:[ r.p_node ]
                  ~new_children:[ node_sibling ] ~rmv_leaf:None
              with
              | Some fi when run_own t fi ->
                  attempt_done Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    ~site:"applied" true
              | Some _ ->
                  attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    Obs.Attribution.Flag_cas_lost;
                  attempt (retry_pause bo) (n + 1)
              | None ->
                  attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    (retry_cause2 gp_info r.p_info);
                  attempt (retry_pause bo) (n + 1))
          | _ ->
              attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                Obs.Attribution.Conflict;
              attempt (retry_pause bo) (n + 1)
        end
  in
  attempt Chaos.Backoff.init 1

let replace_key t vd vi =
  check_key vd;
  check_key vi;
  if B.equal vd vi then false
  else
    let rec attempt bo n =
      let t0 = span_start () in
      let restart bo =
        attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0
          Obs.Attribution.Conflict;
        bo
      in
      let h = Atomic.get t.holder in
      match search_renew t h vd with
      | None -> attempt (retry_pause (restart bo)) (n + 1)
      | Some rd -> (
      descent t.stats (fun s -> s.descent_replace) rd.depth;
      if not (key_in_trie rd.node vd rd.rmvd) then
        attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0 ~site:"absent"
          false
      else begin
        match search_renew t h vi with
        | None -> attempt (retry_pause (restart bo)) (n + 1)
        | Some ri -> (
        descent t.stats (fun s -> s.descent_replace) ri.depth;
        if key_in_trie ri.node vi ri.rmvd then
          attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0 ~site:"present"
            false
        else begin
          let node_info_i = Atomic.get (node_info ri.node) in
          let node_sibling_d = Atomic.get rd.p.children.(sibling_index rd.p vd) in
          let node_d = rd.node and node_i = ri.node in
          let pd = rd.p and pi = ri.p in
          let leaf_d =
            match node_d with Leaf l -> l | Internal _ -> assert false
          in
          let same_node a b =
            match (a, b) with
            | Leaf x, Leaf y -> x == y
            | Internal x, Internal y -> x == y
            | _ -> false
          in
          let node_i_is ni (x : internal) =
            match ni with Internal i -> i == x | Leaf _ -> false
          in
          let fi =
            if
              rd.gp <> None
              && (not (same_node node_i node_d))
              && (not (node_i_is node_i pd))
              && (not
                    (match rd.gp with
                    | Some gp -> node_i_is node_i gp
                    | None -> false))
              && not (pi == pd)
            then begin
              let gpd = Option.get rd.gp and gpd_info = Option.get rd.gp_info in
              let copy_i = copy_node ~gen:h.hgen node_i in
              match
                create_node ~gen:h.hgen copy_i (Leaf (new_leaf vi))
                  (Some node_info_i)
              with
              | None -> None
              | Some new_node_i -> (
                  match node_i with
                  | Internal i ->
                      new_flag ~fh:h ~cell:t.holder
                        ~flags:
                          [
                            (gpd, gpd_info);
                            (pd, rd.p_info);
                            (pi, ri.p_info);
                            (i, node_info_i);
                          ]
                        ~unflag:[ gpd; pi ]
                        ~pnodes:[ pi; gpd ]
                        ~old_children:[ node_i; rd.p_node ]
                        ~new_children:[ Internal new_node_i; node_sibling_d ]
                        ~rmv_leaf:(Some leaf_d)
                  | Leaf _ ->
                      new_flag ~fh:h ~cell:t.holder
                        ~flags:
                          [ (gpd, gpd_info); (pd, rd.p_info); (pi, ri.p_info) ]
                        ~unflag:[ gpd; pi ]
                        ~pnodes:[ pi; gpd ]
                        ~old_children:[ node_i; rd.p_node ]
                        ~new_children:[ Internal new_node_i; node_sibling_d ]
                        ~rmv_leaf:(Some leaf_d))
            end
            else if same_node node_i node_d then
              new_flag ~fh:h ~cell:t.holder
                ~flags:[ (pd, rd.p_info) ]
                ~unflag:[ pd ] ~pnodes:[ pd ] ~old_children:[ node_i ]
                ~new_children:[ Leaf (new_leaf vi) ] ~rmv_leaf:None
            else if
              (node_i_is node_i pd
              && match rd.gp with Some gp -> pi == gp | None -> false)
              || (rd.gp <> None && pi == pd)
            then begin
              let gpd = Option.get rd.gp and gpd_info = Option.get rd.gp_info in
              let sib_info = Atomic.get (node_info node_sibling_d) in
              match
                create_node ~gen:h.hgen node_sibling_d (Leaf (new_leaf vi))
                  (Some sib_info)
              with
              | None -> None
              | Some new_node_i ->
                  new_flag ~fh:h ~cell:t.holder
                    ~flags:[ (gpd, gpd_info); (pd, rd.p_info) ]
                    ~unflag:[ gpd ] ~pnodes:[ gpd ] ~old_children:[ rd.p_node ]
                    ~new_children:[ Internal new_node_i ] ~rmv_leaf:None
            end
            else if
              match rd.gp with Some gp -> node_i_is node_i gp | None -> false
            then begin
              let gpd = Option.get rd.gp in
              let p_sibling_d = Atomic.get gpd.children.(sibling_index gpd vd) in
              match create_node ~gen:h.hgen node_sibling_d p_sibling_d None with
              | None -> None
              | Some new_child_i -> (
                  match
                    create_node ~gen:h.hgen (Internal new_child_i)
                      (Leaf (new_leaf vi)) None
                  with
                  | None -> None
                  | Some new_node_i ->
                      new_flag ~fh:h ~cell:t.holder
                        ~flags:
                          [
                            (pi, ri.p_info);
                            (gpd, Option.get rd.gp_info);
                            (pd, rd.p_info);
                          ]
                        ~unflag:[ pi ] ~pnodes:[ pi ] ~old_children:[ node_i ]
                        ~new_children:[ Internal new_node_i ] ~rmv_leaf:None)
            end
            else None
          in
          match fi with
          | Some fi when run_own t fi ->
              attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0
                ~site:"applied" true
          | Some _ ->
              attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0
                Obs.Attribution.Flag_cas_lost;
              attempt (retry_pause bo) (n + 1)
          | None ->
              let cause =
                if
                  flagged node_info_i || flagged rd.p_info || flagged ri.p_info
                  || (match rd.gp_info with Some i -> flagged i | None -> false)
                then Obs.Attribution.Flagged_ancestor
                else Obs.Attribution.Conflict
              in
              attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0 cause;
              attempt (retry_pause bo) (n + 1)
        end)
      end)
    in
    attempt Chaos.Backoff.init 1

(* ------------------------------------------------------------------ *)
(* Byte-string front end (one byte = 8 binary digits) *)

let insert t s = insert_key t (B.encode_bytes s)
let delete t s = delete_key t (B.encode_bytes s)
let member t s = member_key t (B.encode_bytes s)
let replace t ~remove ~add = replace_key t (B.encode_bytes remove) (B.encode_bytes add)

let fold_leaves t ~init ~f =
  let rec go acc = function
    | Leaf l ->
        if
          B.equal l.key B.sentinel_lo
          || B.equal l.key B.sentinel_hi
          || logically_removed (Atomic.get l.linfo)
        then acc
        else f acc l.key
    | Internal i ->
        go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
  in
  go init (Internal (Atomic.get t.holder).hroot)

let to_list t =
  List.rev (fold_leaves t ~init:[] ~f:(fun acc k -> B.decode_bytes k :: acc))

let size t = fold_leaves t ~init:0 ~f:(fun acc _ -> acc + 1)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go (path : B.t) node =
    (match Atomic.get (node_info node) with
    | Unflag _ -> ()
    | Snap _ -> err "residual snapshot descriptor on reachable node"
    | Flag _ -> (
        match node with
        | Leaf l -> err "residual flag on reachable leaf %a" B.pp l.key
        | Internal i -> err "residual flag on internal %a" B.pp i.label));
    match node with
    | Leaf l ->
        if not (B.is_prefix path l.key) then
          err "leaf %a not under path %a" B.pp l.key B.pp path
    | Internal i ->
        if not (B.is_prefix path i.label) then
          err "internal %a not under path %a" B.pp i.label B.pp path;
        let c0 = Atomic.get i.children.(0) and c1 = Atomic.get i.children.(1) in
        let check dir c =
          let expect = B.extend i.label dir in
          if not (B.is_prefix expect (node_label c)) then
            err "child %d of %a mislabelled" dir B.pp i.label
        in
        check 0 c0;
        check 1 c1;
        go (B.extend i.label 0) c0;
        go (B.extend i.label 1) c1
  in
  go B.empty (Internal (Atomic.get t.holder).hroot);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Snapshots: the same protocol as {!Patricia.snapshot} — sandwich a
   Snap descriptor on the root's info field, swing the holder to a
   fresh-generation copy, then resolve every published descriptor so
   the frozen generation is physically complete before returning. *)

type view = { vepoch : int; vroot : internal }

let snapshot t =
  let rec attempt () =
    let h = Atomic.get t.holder in
    let root = h.hroot in
    match Atomic.get root.iinfo with
    | (Flag _ | Snap _) as fi ->
        ignore (help fi);
        attempt ()
    | Unflag _ as ri ->
        let c0 = Atomic.get root.children.(0)
        and c1 = Atomic.get root.children.(1) in
        let gen' = ref () in
        let root' =
          {
            label = root.label;
            children = [| Atomic.make c0; Atomic.make c1 |];
            iinfo = Atomic.make (fresh_unflag ());
            gen = gen';
          }
        in
        let h' = { epoch = h.epoch + 1; hgen = gen'; hroot = root' } in
        let si = Snap { s_old = h; s_new = h'; s_cell = t.holder } in
        if Atomic.compare_and_set root.iinfo ri si then begin
          ignore (Atomic.compare_and_set t.holder h h');
          ignore (Atomic.compare_and_set root.iinfo si (fresh_unflag ()));
          List.iter
            (fun slot ->
              match Atomic.get slot with
              | Some fi -> ignore (help fi)
              | None -> ())
            (Atomic.get t.slots);
          h
        end
        else attempt ()
  in
  let h = attempt () in
  { vepoch = h.epoch; vroot = h.hroot }

module View = struct
  type t = view

  let epoch v = v.vepoch

  (* Frozen walk: info fields are ignored (see {!Patricia.View}) —
     every reachable non-sentinel leaf is an element of the frozen
     set. *)
  let fold_keys v ~init ~f =
    let rec go acc = function
      | Leaf l ->
          if B.equal l.key B.sentinel_lo || B.equal l.key B.sentinel_hi then
            acc
          else f acc l.key
      | Internal i ->
          go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
    in
    go init (Internal v.vroot)

  let fold v ~init ~f =
    fold_keys v ~init ~f:(fun acc k -> f acc (B.decode_bytes k))

  let to_list v = List.rev (fold v ~init:[] ~f:(fun acc s -> s :: acc))
  let size v = fold_keys v ~init:0 ~f:(fun acc _ -> acc + 1)
end

(* ------------------------------------------------------------------ *)
(* Structure forensics: shape census and descent-cost exports *)

(* Per-node footprint on 64-bit, in words.  Fixed parts match
   {!Patricia} (variant wrapper 2, record fields + header, one Atomic
   box of 2 per mutable slot, [Unflag (ref ())] info 4); labels and
   keys add a {!Bitkey.Bitstr.t} record (3 words) plus its backing
   string block (header + padded data words).  Shared strings (the
   sentinels, [B.empty]) are counted once per node by the estimate;
   [Obj.reachable_words] in [census] reports the deduplicated truth. *)
let bitstr_words b =
  let bytes = (B.length b + 7) / 8 in
  3 + 1 + ((bytes + 8) / 8)

let internal_base_words = 20 (* +1 over the PR 8 layout: the gen field *)
let leaf_base_words = 11

let census t =
  let a = Obs.Shape.acc ~structure:name in
  let rec go depth node =
    match node with
    | Leaf l ->
        let sentinel =
          B.equal l.key B.sentinel_lo || B.equal l.key B.sentinel_hi
        in
        let keys =
          if sentinel || logically_removed (Atomic.get l.linfo) then 0 else 1
        in
        Obs.Shape.leaf a ~depth ~keys ~sentinel
          ~words:(leaf_base_words + bitstr_words l.key)
    | Internal i ->
        Obs.Shape.internal a ~depth ~prefix_len:(B.length i.label) ~children:2
          ~words:(internal_base_words + bitstr_words i.label);
        go (depth + 1) (Atomic.get i.children.(0));
        go (depth + 1) (Atomic.get i.children.(1))
  in
  let root = (Atomic.get t.holder).hroot in
  go 0 (Internal root);
  let measured_words = Obj.reachable_words (Obj.repr root) in
  Some (Obs.Shape.finish ~measured_words a)

let descent_stats t =
  match t.stats with
  | None -> None
  | Some s ->
      Some
        [
          ("descent_nodes_find", Obs.Counter.sum s.descent_find);
          ("descent_nodes_insert", Obs.Counter.sum s.descent_insert);
          ("descent_nodes_delete", Obs.Counter.sum s.descent_delete);
          ("descent_nodes_replace", Obs.Counter.sum s.descent_replace);
          ("descent_searches", Obs.Counter.sum s.descent_searches);
        ]

let descent_summary t =
  match t.stats with
  | None -> None
  | Some s -> Some (Obs.Histogram.snapshot s.descent_depth)

(** Non-blocking Patricia trie with an atomic replace operation.

    OCaml implementation of N. Shafiei, {e Non-blocking Patricia Tries with
    Replace Operations}, ICDCS 2013 (arXiv:1303.3626).

    The trie stores a linearizable set of integer keys.  {!insert},
    {!delete} and {!replace} are lock-free; {!find}/{!member} is wait-free
    and never writes to shared memory.  {!replace} removes one key and
    inserts another {e atomically}: both changes become visible at a single
    linearization point, the first successful child CAS.  Updates operating
    on disjoint parts of the trie run completely concurrently.

    All operations may be called from any number of domains. *)

type t
(** A concurrent Patricia trie. *)

val name : string
(** ["PAT"], the label used in the paper's charts. *)

val create : universe:int -> ?record_stats:bool -> unit -> t
(** [create ~universe ()] is an empty trie accepting keys in
    [\[0, universe)].  Internally keys are embedded into [l]-bit strings
    with [l = ceil(log2 (universe + 2))]; the all-zeros and all-ones
    strings are reserved for the two permanent sentinel leaves (paper
    Section III-A).  [record_stats] enables the retry/help counters
    reported by {!stats_snapshot} (small constant overhead).

    @raise Invalid_argument if [universe < 1]. *)

val create_width : width:int -> ?record_stats:bool -> unit -> t
(** [create_width ~width ()] is a trie over raw [width]-bit keys; valid
    keys are [1 .. 2^width - 2] (the extremes are the sentinels).  Use
    this when the bit structure of keys matters, e.g. for Morton-encoded
    points or the Section-VI string encoding.

    @raise Invalid_argument unless [2 <= width <= 62]. *)

val insert : t -> int -> bool
(** [insert t v] adds [v] and returns [true], or returns [false] if [v]
    was already present.  Lock-free. *)

val delete : t -> int -> bool
(** [delete t v] removes [v] and returns [true], or returns [false] if
    [v] was absent.  Lock-free. *)

val replace : t -> remove:int -> add:int -> bool
(** [replace t ~remove ~add] atomically removes [remove] and inserts
    [add].  Returns [true] iff [remove] was present and [add] absent at
    the linearization point; otherwise the trie is unchanged and the
    result is [false].  [replace t ~remove:v ~add:v] is always [false].
    Lock-free; performs at most two child CASes (one in the special
    cases of Figure 6). *)

val member : t -> int -> bool
(** [member t v] is [true] iff [v] is in the set.  Wait-free: it reads at
    most [l] child pointers and never writes. *)

val to_list : t -> int list
(** Ascending list of the keys currently stored.  Accurate in quiescent
    states; during concurrent updates it is a consistent-enough audit
    view used by tests. *)

val size : t -> int
(** Number of keys stored (quiescent accuracy, like {!to_list}). *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** In-order (ascending-key) fold over the stored keys.  Like the Ctrie
    paper's snapshot-free iterator this traversal is weakly consistent
    under concurrency: every key it reports was present at the moment it
    was visited; it is exact in quiescent states. *)

val iter : t -> f:(int -> unit) -> unit

val min_elt : t -> int option
(** Smallest stored key, or [None] if empty.  Weakly consistent. *)

val max_elt : t -> int option
(** Largest stored key, or [None] if empty.  Weakly consistent. *)

val fold_range : t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Ascending fold over the stored keys within [\[lo, hi\]] (clamped to
    the universe), pruning every subtree whose label interval misses the
    range — the quadtree-style search behind the paper's GIS use case.
    Weakly consistent like {!fold}. *)

type view
(** A frozen, immutable version of the trie, produced by {!snapshot}.
    Reading a view costs nothing beyond the traversal itself and never
    interferes with concurrent writers. *)

val snapshot : t -> view
(** [snapshot t] atomically freezes the current contents and returns a
    view of them.  O(1) in the number of keys (plus a scan of the
    per-domain descriptor slots): the trie root sits behind a
    generation-stamped holder; the snapshot installs a one-node
    descriptor on the root, swings the holder to a fresh-generation
    copy, and resolves every published update descriptor so the frozen
    generation is physically complete before returning.  The
    linearization point is the holder swing: the view contains exactly
    the keys for which a successful insert linearized before it and no
    successful delete/replace-removal did.  Subsequent updates pay a
    one-time copy of each internal node they first descend through in
    the new generation (copy-on-descent); {!member} is unaffected.
    Lock-free; any number of snapshots may run concurrently with any
    number of updates. *)

(** Reading frozen views.  All traversals are exact with respect to the
    snapshot's linearization point and never observe later updates. *)
module View : sig
  type t = view

  val epoch : t -> int
  (** Generation number of the view: 0 for a fresh trie, incremented by
      every snapshot.  Two views of the same trie with the same epoch
      are the same frozen version. *)

  val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
  (** In-order (ascending-key) fold over the frozen keys. *)

  val fold_range : t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> 'a
  (** Ascending fold over the frozen keys within [\[lo, hi\]] (clamped
      to the universe), with the same subtree pruning as
      {!Patricia.fold_range}. *)

  val to_list : t -> int list
  (** Ascending list of the frozen keys. *)

  val size : t -> int

  val to_seq : t -> int Seq.t
  (** Lazy ascending sequence over the frozen keys; safe to consume at
      any pace — the version it reads can never change. *)
end

val snapshot_capability : t -> Dset_intf.view option
(** {!snapshot} repackaged as the first-class optional capability record
    of the common signature — always [Some] for PAT.  Adapters that
    [include Core.Patricia] to satisfy [Dset_intf.CONCURRENT_SET] bind
    [let snapshot = snapshot_capability] instead of re-wrapping the view
    by hand. *)

val check_invariants : t -> (unit, string) result
(** Validate the structural invariants: Invariant 7 (a node's child label
    extends the node's label plus the branch bit), every internal node
    has two children, both sentinels are reachable, leaf keys are
    strictly ascending in traversal order, and — the quiescence audit
    the fault-injection suite relies on — no reachable node carries a
    residual flag (every update descriptor, including those of stalled
    processes, must have been run to completion or backed out by
    helpers).  Quiescent use. *)

(** Merged view of the contention counters at one point in time.  The
    live counters are striped per domain ([Obs.Counter]); a snapshot
    sums the stripes, so it is exact in quiescent states and a
    consistent-enough view during concurrent updates. *)
type snapshot = {
  attempts : int;  (** retry-loop iterations across all updates *)
  helps_given : int;
      (** times an update helped {e another} operation's pending
          descriptor before retrying *)
  helps_received : int;
      (** flag CASes lost because a helper had already installed the
          same descriptor — how often this trie's updates were helped *)
  flag_failures : int;  (** attempts abandoned in the flagging phase *)
  backtracks : int;
      (** failed flag phases backed out inside [help] (paper lines
          103-106) *)
  backoff_waits : int;
      (** retries that paused in the contention backoff — always [0]
          unless [Chaos.Backoff.set_enabled true]
          ([patbench --backoff] / [REPRO_BACKOFF=1]) *)
  descent_nodes_find : int;
      (** nodes visited by [member] searches (root's child = 1 each) *)
  descent_nodes_insert : int;  (** nodes visited by insert-attempt searches *)
  descent_nodes_delete : int;  (** nodes visited by delete-attempt searches *)
  descent_nodes_replace : int;
      (** nodes visited by replace-attempt searches (two per attempt) *)
  descent_searches : int;
      (** completed searches — divide [descent_nodes_*] sums by this for
          the mean descent depth *)
}

val stats_snapshot : t -> snapshot option
(** The counters if the trie was created with [~record_stats:true].
    Recording is per-domain sharded: enabling stats does not introduce a
    shared CAS on the update hot path. *)

val stats_to_alist : snapshot -> (string * int) list
(** Stable [(name, value)] view of a snapshot, in declaration order —
    monotone cumulative counters only, so callers may difference two
    alists around a timed window; used by the metrics JSON emitters. *)

val descent_stats : t -> (string * int) list option
(** The descent-cost slice of {!stats_to_alist} (nodes visited per
    opcode plus the search count) — the uniform capability every
    registry structure answers; [None] when the trie records no stats. *)

val descent_summary : t -> Obs.Histogram.summary option
(** Depth histogram of all recorded searches (count/mean/p50/p90/p99 of
    nodes visited).  [None] without [~record_stats:true]. *)

val census : t -> Dset_intf.census option
(** Shape census of the current trie: node counts by kind, exact
    leaf-depth / label-length / branching distributions, and footprint
    (layout estimate cross-checked by [Obj.reachable_words]).  Always
    [Some] for PAT.  Weakly consistent like {!fold}; exact in
    quiescence. *)

(** Test-only access to the coordination machinery.  These entry points
    let the test-suite create an update descriptor, apply only its
    flagging phase (simulating a process that stops mid-update), and have
    other operations or an explicit {!For_testing.help} complete it —
    exercising the non-blocking property of Section IV part 4. *)
module For_testing : sig
  type descriptor

  val prepare_insert : t -> int -> descriptor option
  (** Run one insert attempt up to descriptor creation without applying
      it.  [None] if the attempt would have restarted (conflict) or the
      key is already present. *)

  val prepare_delete : t -> int -> descriptor option
  (** Like {!prepare_insert} for a deletion: the descriptor flags the
      grandparent and parent of the key's leaf but is not applied. *)

  val flag_only : descriptor -> bool
  (** Perform only the flag CASes of the descriptor; returns the paper's
      [doChildCAS].  The caller then "crashes", leaving flags behind. *)

  val help : descriptor -> bool
  (** Complete (or back out) the update described by the descriptor,
      exactly as any helping process would. *)

  val set_help_hook : (unit -> unit) option -> unit
  (** Install a callback invoked at every entry to the internal help
      routine; used by tests to count helping. *)

  val flags_on_path : t -> int -> int
  (** Number of flagged nodes on the search path of a key — 0 in any
      quiescent state where no update died holding flags. *)
end

(** Non-blocking Patricia trie over variable-length keys — the
    Section-VI extension of the paper: node labels are arbitrary-length
    bit strings rather than l-bit words, so the trie stores unbounded
    strings.

    Keys are held under the [0 -> 01, 1 -> 10, $ -> 11] encoding, which
    makes distinct keys mutually prefix-free and strictly between the
    sentinel leaves [00] and [111].  The byte-string API below performs
    the encoding; the [_key] API takes pre-encoded {!Bitkey.Bitstr.t}
    values (useful to store raw binary strings).

    Updates are lock-free exactly as in {!Patricia}; searches terminate
    and are non-blocking but — as the paper points out — no longer
    wait-free, because the height is bounded only by the longest key
    currently stored. *)

type t

val name : string
(** ["PAT-VLK"]. *)

val create : ?record_stats:bool -> unit -> t
(** [create ()] is an empty trie.  [record_stats] enables the
    descent-cost counters behind {!descent_stats} and
    {!descent_summary} (striped per domain; small constant overhead,
    one untaken branch when disabled). *)

(** {1 Byte-string API} (keys are arbitrary {e non-empty} strings) *)

val insert : t -> string -> bool
val delete : t -> string -> bool
val member : t -> string -> bool

val replace : t -> remove:string -> add:string -> bool
(** Atomic replace, exactly as in the fixed-width trie. *)

val to_list : t -> string list
(** Stored strings in encoded-key order (quiescent accuracy).  Only
    valid when every key was inserted through the byte-string API; keys
    inserted through the raw API with a different encoding make the
    decode raise. *)

val size : t -> int

type view
(** A frozen, immutable version of the trie — see {!Patricia.view}. *)

val snapshot : t -> view
(** [snapshot t] atomically freezes the current contents, O(1) in the
    key count, exactly as {!Patricia.snapshot}: the view contains the
    keys present at the snapshot's linearization point (the holder
    swing) and never observes later updates. *)

module View : sig
  type t = view

  val epoch : t -> int

  val fold : t -> init:'a -> f:('a -> string -> 'a) -> 'a
  (** Fold over the frozen byte-string keys in encoded-key order.  Only
      valid when every key was inserted through the byte-string API
      (like {!to_list}). *)

  val to_list : t -> string list
  val size : t -> int
end

val check_invariants : t -> (unit, string) result
(** Structural audit for quiescent states: label-prefix ordering
    (Invariant 7) and — like {!Patricia.check_invariants} — no residual
    flag on any reachable node, so a stalled update must have been
    completed or backed out by helpers.  Used by the fault-injection
    suite after every chaos scenario. *)

(** {1 Raw encoded-key API} *)

val insert_key : t -> Bitkey.Bitstr.t -> bool
val delete_key : t -> Bitkey.Bitstr.t -> bool
val member_key : t -> Bitkey.Bitstr.t -> bool
val replace_key : t -> Bitkey.Bitstr.t -> Bitkey.Bitstr.t -> bool

(** {1 Structure forensics} *)

val census : t -> Dset_intf.census option
(** Shape census of the current trie: node counts by kind, exact
    leaf-depth / label-length (in bits) / branching distributions, and
    footprint — per-node layout estimate from the variable
    {!Bitkey.Bitstr} label lengths, cross-checked by
    [Obj.reachable_words].  Always [Some] for PAT-VLK.  Weakly
    consistent under concurrency; exact in quiescence. *)

val descent_stats : t -> (string * int) list option
(** Cumulative nodes visited per opcode plus the search count, exactly
    as {!Patricia.descent_stats}; [None] without [~record_stats:true]. *)

val descent_summary : t -> Obs.Histogram.summary option
(** Depth histogram of all recorded searches; [None] without
    [~record_stats:true]. *)

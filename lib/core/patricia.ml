(* Non-blocking Patricia trie with replace operations.

   This is a direct transcription of the algorithm of

     N. Shafiei, "Non-blocking Patricia Tries with Replace Operations",
     ICDCS 2013 (arXiv:1303.3626),

   for an asynchronous shared-memory system with single-word CAS.  Line
   numbers in comments refer to the paper's pseudocode (Figures 2-4).

   Concurrency notes specific to OCaml 5:

   - [Atomic.compare_and_set] compares by physical equality, which matches
     the paper's pointer-identity CAS.
   - The paper avoids the ABA problem on [info] fields by installing a
     *newly allocated* Unflag object on every unflag/backtrack CAS; we
     reproduce this with [Unflag (ref ())], whose block is fresh per
     allocation, so two Unflags are never physically equal.
   - A Flag descriptor must be wrapped in the [info] variant exactly once
     so that all CASes and reads compare the same physical value; the
     shared wrapper is created in [new_flag] and threaded everywhere.

   Snapshots (not part of the paper; see the [Snapshots] section below):
   the trie root sits behind a generation-stamped holder, every update
   descriptor validates the holder at a single decision CAS, and a
   snapshot swings the holder to a copied root — O(1) in the number of
   keys — after which the old generation is immutable. *)

module Label = Bitkey.Label

type info = Unflag of unit ref | Flag of flag | Snap of snap

and node = Leaf of leaf | Internal of internal

and leaf = { key : int; linfo : info Atomic.t }

and internal = {
  label : Label.t;
  children : node Atomic.t array; (* length 2: left (bit 0), right (bit 1) *)
  iinfo : info Atomic.t;
  gen : unit ref;
      (* Generation stamp: physically equal to [hgen] of the holder that
         was current when this node was created.  Immutable.  Updates
         renew (copy into the current generation) every internal node
         they descend through whose stamp is stale, so the nodes whose
         children they CAS always belong to the live generation and the
         frozen generations behind past snapshots are never mutated. *)
}

(* One generation of the trie.  [hroot] is that generation's root;
   [hgen] is the identity the root's descendants are stamped with.
   The live generation is the one in [t.holder]; a snapshot replaces it
   wholesale (fresh [hroot] sharing the old children), so a holder value
   doubles as a frozen, immutable version once superseded. *)
and holder = { epoch : int; hgen : unit ref; hroot : internal }

(* The fate of an update descriptor.  [Pending] until some process that
   completed the flagging phase validates the generation; the single
   decision CAS is the only place an update commits, so a snapshot that
   swings the holder strictly before that CAS is never missed. *)
and decision = Pending | Commit | Abort

(* The Flag descriptor (paper Figure 2, lines 8-16).  [flag_nodes] are the
   internal nodes to flag, sorted by label; [old_infos.(i)] is the value
   that must still be in [flag_nodes.(i).iinfo] for the flag CAS to
   succeed.  [pnodes.(i).children.(k)] is CASed from [old_children.(i)] to
   [new_children.(i)].  [unflag_nodes] are unflagged afterwards; flagged
   nodes absent from it are removed from the trie and stay flagged
   ("marked") forever.  [rmv_leaf] is the leaf logically removed by a
   general-case replace. *)
and flag = {
  flag_nodes : internal array;
  old_infos : info array;
  unflag_nodes : internal array;
  pnodes : internal array;
  old_children : node array;
  new_children : node array;
  rmv_leaf : leaf option;
  decision : decision Atomic.t;
      (* Replaces the paper's [flag_done] bit: [Commit] is decided by
         the single CAS of a process that observed every flag CAS
         succeed *and* the owning trie's holder still equal to
         [fholder]; the child CASes run only under a [Commit].  The
         paper's semantics are the special case where the holder never
         changes. *)
  fholder : holder; (* the generation this attempt's search ran against *)
  fcell : holder Atomic.t; (* the owning trie's holder cell, for validation *)
  fwidth : int; (* key width of the owning trie, for child-index computation *)
  fstats : stats option;
      (* The owning trie's counters, carried by the descriptor so that
         helpers — which see only the descriptor — can attribute events
         (helps received, backtracks) to the right trie. *)
}

(* Descriptor of an in-flight snapshot, installed on the old root's
   [iinfo] like a one-node flag: it proves the root's children did not
   change between being copied into [s_new.hroot] and the holder CAS,
   and it lets any process (an update that finds it while flagging the
   root, or a concurrent snapshot) complete the swing. *)
and snap = { s_old : holder; s_new : holder; s_cell : holder Atomic.t }

(* Counters for the help-rate ablation and the observability layer;
   disabled (None) by default so the hot path pays a single branch.
   Each counter is striped per domain ([Obs.Counter]): enabling stats no
   longer shares one Atomic.t across domains, so the instrumentation
   does not become the contention hotspot it is measuring. *)
and stats = {
  attempts : Obs.Counter.t; (* retry-loop iterations across all updates *)
  helps_given : Obs.Counter.t; (* calls to help on *another* op's descriptor *)
  helps_received : Obs.Counter.t;
      (* flag CASes lost because another process had already installed
         this very descriptor — i.e. our operation was helped along *)
  flag_failures : Obs.Counter.t; (* attempts abandoned in the flagging phase *)
  backtracks : Obs.Counter.t; (* failed flag phases backed out in help *)
  backoff_waits : Obs.Counter.t;
      (* retries that paused in the contention backoff (Chaos.Backoff) *)
  (* Descent-cost accounting: nodes visited per search (root included),
     split by the opcode that ran the search, plus a depth histogram
     for the tail.  One search = one histogram record + one counter
     add, on the recording domain's own stripe. *)
  descent_find : Obs.Counter.t;
  descent_insert : Obs.Counter.t;
  descent_delete : Obs.Counter.t;
  descent_replace : Obs.Counter.t;
  descent_searches : Obs.Counter.t;
  descent_depth : Obs.Histogram.t;
}

(* Point-in-time merged view of the counters (see [stats_snapshot]). *)
type snapshot = {
  attempts : int;
  helps_given : int;
  helps_received : int;
  flag_failures : int;
  backtracks : int;
  backoff_waits : int;
  descent_nodes_find : int;
  descent_nodes_insert : int;
  descent_nodes_delete : int;
  descent_nodes_replace : int;
  descent_searches : int;
}

type t = {
  width : int;
  holder : holder Atomic.t; (* the live generation; swung only by snapshots *)
  slots : info option Atomic.t list Atomic.t;
      (* Published-descriptor registry: one slot per domain that ever
         updated this trie.  An update publishes its descriptor before
         the flagging phase and clears the slot after completion, so a
         snapshot can resolve (commit or abort) every descriptor that
         might still commit against the generation it froze — the scan
         is O(#domains), independent of the key count. *)
  slot_key : info option Atomic.t option ref Domain.DLS.key;
  offset : int;
  bound : int; (* exclusive upper bound on user keys *)
  stats : stats option;
}

(* The calling domain's published-descriptor slot for [t], created and
   registered on first use. *)
let my_slot t =
  let r = Domain.DLS.get t.slot_key in
  match !r with
  | Some s -> s
  | None ->
      let s = Atomic.make None in
      let rec push () =
        let l = Atomic.get t.slots in
        if not (Atomic.compare_and_set t.slots l (s :: l)) then push ()
      in
      push ();
      r := Some s;
      s

let fresh_unflag () = Unflag (ref ())

let new_leaf key = { key; linfo = Atomic.make (fresh_unflag ()) }

let node_info = function
  | Leaf l -> l.linfo
  | Internal i -> i.iinfo

let node_label ~width = function
  | Leaf l -> Label.of_key ~width l.key
  | Internal i -> i.label

let make_stats () : stats =
  {
    attempts = Obs.Counter.create ();
    helps_given = Obs.Counter.create ();
    helps_received = Obs.Counter.create ();
    flag_failures = Obs.Counter.create ();
    backtracks = Obs.Counter.create ();
    backoff_waits = Obs.Counter.create ();
    descent_find = Obs.Counter.create ();
    descent_insert = Obs.Counter.create ();
    descent_delete = Obs.Counter.create ();
    descent_replace = Obs.Counter.create ();
    descent_searches = Obs.Counter.create ();
    descent_depth = Obs.Histogram.create ();
  }

(* The disabled-stats hot path must stay a single branch: [None -> ()]
   and nothing else.  The closure arguments below are constant (capture
   nothing), so the compiler lifts them to static data — no allocation
   either way. *)
let[@inline] bump (stats : stats option) (field : stats -> Obs.Counter.t) =
  match stats with None -> () | Some s -> Obs.Counter.incr (field s)

(* One completed search: [d] nodes visited, attributed to the opcode's
   counter.  Same disabled contract as [bump] — [None] is one branch. *)
let[@inline] descent (stats : stats option) (field : stats -> Obs.Counter.t) d =
  match stats with
  | None -> ()
  | Some s ->
      Obs.Counter.add (field s) d;
      Obs.Counter.incr s.descent_searches;
      Obs.Histogram.record s.descent_depth d

(* Fault-injection site (lib/chaos).  Same hot-path discipline as
   [bump]: with no chaos policy installed this is one atomic load and an
   untaken branch, inlined at every labelled synchronization point. *)
let[@inline] chaos_point (s : Chaos.site) =
  if Atomic.get Chaos.active then Chaos.hit s

(* Pause before retrying a failed update attempt.  [bo] is the backoff
   state (a plain int) threaded through the attempt loop; with backoff
   disabled (the default) this retries immediately, as in the paper. *)
let[@inline] retry_pause (stats : stats option) bo =
  chaos_point Chaos.Retry;
  if Chaos.Backoff.enabled () then begin
    bump stats (fun s -> s.backoff_waits);
    Chaos.Backoff.wait bo
  end
  else bo

(* ------------------------------------------------------------------ *)
(* Flight recorder (lib/obs).  Two further gated instrumentation
   families alongside [bump] and [chaos_point], with the same disabled
   cost — one atomic load and an untaken branch per site:

   - one closed span per update attempt into the global trace recorder
     ([Obs.Trace.set_recorder]), labelled with the attempt number and
     the retry cause / CAS site it ended at;
   - per-cause retry attribution ([Obs.Attribution.mark] and
     [op_complete], both gated internally on their own flag).

   [span_start] reads the clock only when tracing is live; a zero start
   marks the attempt as untraced, so the completion helpers need no
   second atomic load. *)

let[@inline] span_start () =
  if Atomic.get Obs.Trace.active then Obs.Clock.now_ns () else 0

let span_emit kind ~key ~ok ~attempt ~site ~t0 =
  match Obs.Trace.recorder () with
  | Some tr ->
      Obs.Trace.emit_span tr kind ~key ~ok ~retries:(attempt - 1) ~attempt
        ~site ~t0_ns:t0
  | None -> ()

(* Attempt finished with outcome [ok]; [site] says how ("applied", or
   why the operation was a no-op). *)
let[@inline] attempt_done kind ~key ~attempt ~t0 ~site ok =
  if t0 <> 0 then span_emit kind ~key ~ok ~attempt ~site ~t0;
  Obs.Attribution.op_complete ();
  ok

(* Attempt failed and the loop will go around; [cause] names the CAS it
   lost or the conflict it hit. *)
let[@inline] attempt_retry kind ~key ~attempt ~t0 cause =
  Obs.Attribution.mark cause ~attempt;
  if t0 <> 0 then
    span_emit kind ~key ~ok:false ~attempt
      ~site:(Obs.Attribution.cause_name cause)
      ~t0

let[@inline] flagged = function
  | Flag _ | Snap _ -> true
  | Unflag _ -> false

(* Cause of a [None] return from the newFlag family, recovered from the
   info values the attempt read: if any was a Flag we restarted after
   helping a pending descriptor; otherwise a node changed between two
   reads of the same attempt. *)
let[@inline] retry_cause2 a b =
  if flagged a || flagged b then Obs.Attribution.Flagged_ancestor
  else Obs.Attribution.Conflict

(* ------------------------------------------------------------------ *)
(* Construction *)

let create_width ~width ?(record_stats = false) () =
  if width < 2 || width > Bitkey.max_width then
    invalid_arg "Patricia.create_width: width must be in [2, 62]";
  let lo = new_leaf 0 and hi = new_leaf ((1 lsl width) - 1) in
  (* Line 18-19: the root is permanent (within its generation), its
     children start as the two sentinel leaves 00...0 and 11...1, which
     are never elements of D. *)
  let gen = ref () in
  let root =
    {
      label = Label.empty;
      children = [| Atomic.make (Leaf lo); Atomic.make (Leaf hi) |];
      iinfo = Atomic.make (fresh_unflag ());
      gen;
    }
  in
  {
    width;
    holder = Atomic.make { epoch = 0; hgen = gen; hroot = root };
    slots = Atomic.make [];
    slot_key = Domain.DLS.new_key (fun () -> ref None);
    offset = 0;
    bound = (1 lsl width) - 1;
    stats = (if record_stats then Some (make_stats ()) else None);
  }

let create ~universe ?record_stats () =
  if universe < 1 then invalid_arg "Patricia.create: universe must be >= 1";
  (* Embed user keys [0, universe) as internal keys [1, universe], leaving
     0 and 2^width - 1 free for the sentinels. *)
  let width = max 2 (Bitkey.bit_length (universe + 1)) in
  let t = create_width ~width ?record_stats () in
  { t with offset = 1; bound = universe }

let max_sentinel t = (1 lsl t.width) - 1

let internal_key t k =
  let k' = k + t.offset in
  if k < 0 || k >= t.bound || k' < 1 || k' >= max_sentinel t then
    invalid_arg "Patricia: key out of the universe"
  else k'

(* ------------------------------------------------------------------ *)
(* Search (lines 76-85) — wait-free: at most [width] iterations, no writes *)

(* logicallyRemoved (lines 122-124): a leaf flagged by a general-case
   replace is logically removed once the replace's first child CAS has
   happened, i.e. once oldChild[0] is no longer a child of pNode[0]. *)
let logically_removed = function
  | Unflag _ | Snap _ -> false
  | Flag f ->
      let p = f.pnodes.(0) and old = f.old_children.(0) in
      not
        (Atomic.get p.children.(0) == old || Atomic.get p.children.(1) == old)

type search_result = {
  gp : internal option;
  p : internal;
  p_node : node;
      (* The *same physical* [node] value stored in gp's child array for
         [p].  CAS compares physical identity, so an update whose old
         child is [p] must use this value — re-wrapping [p] in the
         [Internal] constructor would allocate a distinct block and the
         child CAS would never succeed. *)
  node : node;
  gp_info : info option;
  p_info : info;
  rmvd : bool;
  depth : int;
      (* Child pointers followed to reach [node] — the pointer-chase
         cost of this search, counting the terminal node but not the
         root (root's child = 1).  Computed from values the loop already
         holds, so uninstrumented searches pay one add per level. *)
}

let search_from ~width (root : internal) v =
  (* The root's label ε is a prefix of every key, so the loop body runs at
     least once and [p] is always an internal node on return.  The root is
     never an old child of any CAS, so its boxed stand-in is harmless. *)
  let rec go gp gp_info (p : internal) p_boxed p_info d =
    let node =
      Atomic.get p.children.(Label.next_bit_of_key ~width p.label v)
    in
    match node with
    | Internal i when Label.is_prefix_of_key ~width i.label v ->
        go (Some p) (Some p_info) i node (Atomic.get i.iinfo) (d + 1)
    | _ ->
        let rmvd =
          match node with
          | Leaf l -> logically_removed (Atomic.get l.linfo)
          | Internal _ -> false
        in
        { gp; p; p_node = p_boxed; node; gp_info; p_info; rmvd; depth = d + 1 }
  in
  go None None root (Internal root) (Atomic.get root.iinfo) 0

let search t v = search_from ~width:t.width (Atomic.get t.holder).hroot v

(* keyInTrie (lines 125-126) *)
let key_in_trie node v rmvd =
  match node with Leaf l -> l.key = v && not rmvd | Internal _ -> false

(* ------------------------------------------------------------------ *)
(* help (lines 86-106) *)

(* [flag_phase fi f] performs the flag CASes in order (lines 87-92) and
   returns the paper's [doChildCAS]: whether every node in f.flag_nodes
   was observed flagged with [fi] immediately after our CAS on it.

   A CAS that fails while the node nevertheless holds [fi] means some
   other process installed this very descriptor before us — the
   operation is being helped; count it on the owning trie. *)
let flag_phase fi f =
  let n = Array.length f.flag_nodes in
  let rec loop i =
    if i >= n then true
    else begin
      let x = f.flag_nodes.(i) in
      chaos_point Chaos.Flag_cas;
      let ours = Atomic.compare_and_set x.iinfo f.old_infos.(i) fi in
      if Atomic.get x.iinfo == fi then begin
        if not ours then bump f.fstats (fun s -> s.helps_received);
        loop (i + 1)
      end
      else false
    end
  in
  loop 0

let child_cas_phase f =
  Array.iteri
    (fun i p ->
      let nc = f.new_children.(i) in
      (* Line 97: the child index is the (|p.label|+1)-th bit of the new
         child's label, which p.label properly prefixes by Invariant 7. *)
      let k = Label.next_bit p.label (node_label ~width:f.fwidth nc) in
      chaos_point Chaos.Child_cas;
      if not (Atomic.compare_and_set p.children.(k) f.old_children.(i) nc) then
        (* Expected old child already gone: a helper or a conflicting
           update got there first.  Attempt number unknown on the
           helper side, recorded as 0. *)
        Obs.Attribution.mark Obs.Attribution.Child_cas_lost ~attempt:0;
      chaos_point Chaos.After_child_cas)
    f.pnodes

let help_counter_hook : (unit -> unit) option ref = ref None

(* Complete an in-flight snapshot found installed on a root: swing the
   holder (idempotent — the new holder value is carried by the
   descriptor, so every helper CASes to the same value) and release the
   old root's info field. *)
let help_snap (si : info) (s : snap) =
  ignore (Atomic.compare_and_set s.s_cell s.s_old s.s_new);
  ignore (Atomic.compare_and_set s.s_old.hroot.iinfo si (fresh_unflag ()))

let rec help (fi : info) : bool =
  match fi with
  | Unflag _ -> assert false
  | Snap s ->
      (* A snapshot never fails; completing it counts as success and the
         helper retries its own operation against the new generation. *)
      help_snap fi s;
      true
  | Flag f -> help_flag fi f

and help_flag (fi : info) (f : flag) : bool =
  (match !help_counter_hook with Some h -> h () | None -> ());
  let do_child_cas = flag_phase fi f in
  (* The decision CAS (not in the paper): an update commits only if some
     process that saw every flag in place also saw the trie's holder
     still at the generation the attempt searched — so a snapshot that
     swung the holder first wins, and the update aborts and retries
     against the new generation.  Exactly one of Commit/Abort ever
     lands; every helper then follows the recorded outcome, which
     subsumes the paper's [flag_done] protocol. *)
  (if Atomic.get f.decision = Pending then
     let d =
       if do_child_cas && Atomic.get f.fcell == f.fholder then Commit
       else Abort
     in
     ignore (Atomic.compare_and_set f.decision Pending d));
  match Atomic.get f.decision with
  | Commit ->
      (* Line 95: flag the leaf removed by a general-case replace; leaves
         are flagged by a plain write, never by CAS, and never unflagged. *)
      (match f.rmv_leaf with Some l -> Atomic.set l.linfo fi | None -> ());
      child_cas_phase f;
      (* Lines 99-102: unflag, in reverse order, the nodes still in the trie. *)
      chaos_point Chaos.Unflag;
      for i = Array.length f.unflag_nodes - 1 downto 0 do
        ignore
          (Atomic.compare_and_set f.unflag_nodes.(i).iinfo fi (fresh_unflag ()))
      done;
      true
  | Abort ->
      (* Lines 103-106: flagging failed (or the generation moved on) —
         back the flags out. *)
      chaos_point Chaos.Backtrack;
      bump f.fstats (fun s -> s.backtracks);
      Obs.Attribution.mark Obs.Attribution.Backtrack ~attempt:0;
      for i = Array.length f.flag_nodes - 1 downto 0 do
        ignore
          (Atomic.compare_and_set f.flag_nodes.(i).iinfo fi (fresh_unflag ()))
      done;
      false
  | Pending -> assert false

(* Specialized newFlag for the one-flag shape (insert at a leaf, replace
   special case 1): allocation-lean version of the generic constructor
   below, to which it is behaviourally identical. *)
and new_flag1 ~width ~stats ~fh ~cell ~node ~old ~old_child ~new_child =
  match old with
  | Flag _ | Snap _ ->
      bump stats (fun s -> s.helps_given);
      ignore (help old);
      None
  | Unflag _ ->
      let nodes = [| node |] in
      Some
        (Flag
           {
             flag_nodes = nodes;
             old_infos = [| old |];
             unflag_nodes = nodes;
             pnodes = nodes;
             old_children = [| old_child |];
             new_children = [| new_child |];
             rmv_leaf = None;
             decision = Atomic.make Pending;
             fholder = fh;
             fcell = cell;
             fwidth = width;
             fstats = stats;
           })

(* Specialized newFlag for the two-flag, one-child-CAS shape (delete;
   insert replacing an internal node; replace special cases 2/3).  The
   first node of the pair is the one to unflag and CAS; the other is
   removed from the trie and stays flagged. *)
and new_flag2 ~width ~stats ~fh ~cell ~a ~a_old ~b ~b_old ~old_child ~new_child =
  match a_old with
  | Flag _ | Snap _ ->
      bump stats (fun s -> s.helps_given);
      ignore (help a_old);
      None
  | Unflag _ -> (
      match b_old with
      | Flag _ | Snap _ ->
          bump stats (fun s -> s.helps_given);
          ignore (help b_old);
          None
      | Unflag _ ->
          if a == b then
            (* Duplicate flag target (lines 112-114): allowed only when
               both reads saw the same info value. *)
            if a_old == b_old then
              Some
                (Flag
                   {
                     flag_nodes = [| a |];
                     old_infos = [| a_old |];
                     unflag_nodes = [| a |];
                     pnodes = [| a |];
                     old_children = [| old_child |];
                     new_children = [| new_child |];
                     rmv_leaf = None;
                     decision = Atomic.make Pending;
                     fholder = fh;
                     fcell = cell;
                     fwidth = width;
                     fstats = stats;
                   })
            else None
          else
            let flag_nodes, old_infos =
              if Label.compare a.label b.label <= 0 then
                ([| a; b |], [| a_old; b_old |])
              else ([| b; a |], [| b_old; a_old |])
            in
            Some
              (Flag
                 {
                   flag_nodes;
                   old_infos;
                   unflag_nodes = [| a |];
                   pnodes = [| a |];
                   old_children = [| old_child |];
                   new_children = [| new_child |];
                   rmv_leaf = None;
                   decision = Atomic.make Pending;
                   fholder = fh;
                   fcell = cell;
                   fwidth = width;
                   fstats = stats;
                 }))

(* newFlag (lines 107-116), generic form used by the replace cases that
   flag three or four nodes.  Takes the nodes to flag paired with the
   info values read from them; returns the shared [Flag] info value, or
   [None] after helping a conflicting update (the caller then retries). *)
and new_flag ~width ~stats ~fh ~cell ~flags ~unflag ~pnodes ~old_children
    ~new_children ~rmv_leaf =
  match
    List.find_opt
      (fun (_, i) -> match i with Flag _ | Snap _ -> true | Unflag _ -> false)
      flags
  with
  | Some (_, old) ->
      (* Lines 109-111: someone else's update is pending on a node we
         need; help it, then fail so our caller restarts from scratch. *)
      bump stats (fun s -> s.helps_given);
      ignore (help old);
      None
  | None -> (
      (* Lines 112-114: duplicates in [flags] are fine iff they carry the
         same old info value (the same node read twice); otherwise the
         node changed between our two reads and we must retry. *)
      let rec dedup acc = function
        | [] -> Some (List.rev acc)
        | (n, i) :: rest -> (
            match List.find_opt (fun (n', _) -> n' == n) acc with
            | Some (_, i') -> if i' == i then dedup acc rest else None
            | None -> dedup ((n, i) :: acc) rest)
      in
      match dedup [] flags with
      | None -> None
      | Some flags ->
          let flags =
            (* Line 115: flag in a fixed total order to avoid livelock. *)
            List.sort
              (fun ((a : internal), _) (b, _) -> Label.compare a.label b.label)
              flags
          in
          let dedup_nodes l =
            List.fold_left
              (fun acc n -> if List.exists (fun n' -> n' == n) acc then acc else n :: acc)
              [] l
            |> List.rev
          in
          let unflag = dedup_nodes unflag in
          Some
            (Flag
               {
                 flag_nodes = Array.of_list (List.map fst flags);
                 old_infos = Array.of_list (List.map snd flags);
                 unflag_nodes = Array.of_list unflag;
                 pnodes = Array.of_list pnodes;
                 old_children = Array.of_list old_children;
                 new_children = Array.of_list new_children;
                 rmv_leaf;
                 decision = Atomic.make Pending;
                 fholder = fh;
                 fcell = cell;
                 fwidth = width;
                 fstats = stats;
               }))

(* createNode (lines 117-121): a new internal node whose children are
   [n1] and [n2], unless one label prefixes the other — in which case the
   trie already (logically) contains a conflicting key and the caller
   must retry, after helping the update recorded in [info] if any. *)
and create_node ~width ~stats ~gen n1 n2 info =
  let l1 = node_label ~width n1 and l2 = node_label ~width n2 in
  if Label.is_prefix l1 l2 || Label.is_prefix l2 l1 then begin
    (match info with
    | Some ((Flag _ | Snap _) as fi) ->
        bump stats (fun s -> s.helps_given);
        ignore (help fi)
    | _ -> ());
    None
  end
  else
    let lcp = Label.lcp l1 l2 in
    let d1 = Label.next_bit lcp l1 in
    let c0, c1 = if d1 = 0 then (n1, n2) else (n2, n1) in
    Some
      {
        label = lcp;
        children = [| Atomic.make c0; Atomic.make c1 |];
        iinfo = Atomic.make (fresh_unflag ());
        gen;
      }

(* ------------------------------------------------------------------ *)
(* Node copying (lines 26 and 52).  The copy must be taken *after* the
   node's info field was read: the flag CAS on that info value then
   guarantees the children did not change in between (Lemma 31), so the
   copy's children equal the original's at the child CAS. *)

let copy_node ~gen = function
  | Leaf l -> Leaf (new_leaf l.key)
  | Internal i ->
      Internal
        {
          label = i.label;
          children =
            [|
              Atomic.make (Atomic.get i.children.(0));
              Atomic.make (Atomic.get i.children.(1));
            |];
          iinfo = Atomic.make (fresh_unflag ());
          gen;
        }

(* ------------------------------------------------------------------ *)
(* Update-side search: publication and copy-on-descent renewal.

   [run_own] wraps [help] on a descriptor this domain created: the
   descriptor is published in the domain's slot before the flagging
   phase and withdrawn after completion.  The SC ordering argument the
   snapshot relies on: a descriptor's Commit decision reads the holder
   *after* the slot publish, and a snapshot reads the slots *after* its
   holder CAS — so any descriptor that committed against the old
   generation is either visible in a slot (and helped to completion
   before the snapshot returns) or already fully applied.

   [search_renew] is [search] for updates: it additionally copies every
   stale-generation internal node the path descends *through* into the
   current generation ([renew_child]) before using it, so the nodes an
   update flags-and-CASes-children-of always carry the live generation
   stamp and frozen views behind past snapshots are never structurally
   mutated.  (Terminal nodes that only get *marked* — e.g. an internal
   node an insert replaces — may be stale: marking touches only the
   info field, which frozen-view traversals ignore.)  A renewal is an
   ordinary two-flag descriptor (the stale node is marked forever, the
   parent's child pointer swings to the copy), so it validates like any
   update and aborts if a snapshot intervenes. *)

let run_own t fi =
  let slot = my_slot t in
  Atomic.set slot (Some fi);
  let r = help fi in
  Atomic.set slot None;
  r

let renew_child t (h : holder) (p : internal) p_info c_boxed (i : internal) =
  let width = t.width and stats = t.stats in
  match Atomic.get i.iinfo with
  | (Flag _ | Snap _) as fi ->
      bump stats (fun s -> s.helps_given);
      ignore (help fi)
  | Unflag _ as ii -> (
      (* The copy is taken after [ii] was read; the flag CAS on [ii]
         then certifies the children did not change in between (the same
         Lemma 31 discipline as an insert replacing an internal node). *)
      let copy =
        Internal
          {
            label = i.label;
            children =
              [|
                Atomic.make (Atomic.get i.children.(0));
                Atomic.make (Atomic.get i.children.(1));
              |];
            iinfo = Atomic.make (fresh_unflag ());
            gen = h.hgen;
          }
      in
      match
        new_flag2 ~width ~stats ~fh:h ~cell:t.holder ~a:p ~a_old:p_info ~b:i
          ~b_old:ii ~old_child:c_boxed ~new_child:copy
      with
      | Some fi -> ignore (run_own t fi)
      | None -> ())

(* [None] means the descent hit a stale node and (at most) renewed it:
   the caller restarts the attempt from a fresh holder read. *)
let search_renew t (h : holder) v =
  let width = t.width in
  let rec go gp gp_info (p : internal) p_boxed p_info d =
    let node =
      Atomic.get p.children.(Label.next_bit_of_key ~width p.label v)
    in
    match node with
    | Internal i when Label.is_prefix_of_key ~width i.label v ->
        if i.gen == h.hgen then
          go (Some p) (Some p_info) i node (Atomic.get i.iinfo) (d + 1)
        else begin
          renew_child t h p p_info node i;
          None
        end
    | _ ->
        let rmvd =
          match node with
          | Leaf l -> logically_removed (Atomic.get l.linfo)
          | Internal _ -> false
        in
        Some
          { gp; p; p_node = p_boxed; node; gp_info; p_info; rmvd; depth = d + 1 }
  in
  go None None h.hroot (Internal h.hroot) (Atomic.get h.hroot.iinfo) 0

(* ------------------------------------------------------------------ *)
(* find (lines 72-75) *)

let member_internal t v =
  let r = search t v in
  descent t.stats (fun s -> s.descent_find) r.depth;
  key_in_trie r.node v r.rmvd

let member t k = member_internal t (internal_key t k)

(* ------------------------------------------------------------------ *)
(* insert (lines 20-32) *)

let sibling_index ~width (p : internal) v =
  1 - Label.next_bit_of_key ~width p.label v

let insert_internal t v =
  let width = t.width and stats = t.stats in
  let rec attempt bo n =
    bump stats (fun s -> s.attempts);
    let t0 = span_start () in
    let h = Atomic.get t.holder in
    match search_renew t h v with
    | None ->
        attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
          Obs.Attribution.Conflict;
        attempt (retry_pause stats bo) (n + 1)
    | Some r -> (
        descent stats (fun s -> s.descent_insert) r.depth;
        if key_in_trie r.node v r.rmvd then
          attempt_done Obs.Trace.Insert ~key:v ~attempt:n ~t0 ~site:"present"
            false
        else begin
          let node_info_v = Atomic.get (node_info r.node) in
          let node_copy = copy_node ~gen:h.hgen r.node in
          match
            create_node ~width ~stats ~gen:h.hgen node_copy
              (Leaf (new_leaf v)) (Some node_info_v)
          with
          | None ->
              attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                (if flagged node_info_v then Obs.Attribution.Flagged_ancestor
                 else Obs.Attribution.Conflict);
              attempt (retry_pause stats bo) (n + 1)
          | Some new_node ->
              let fi =
                match r.node with
                | Internal i ->
                    (* Line 30: replacing an internal node permanently flags
                       it, since it leaves the trie. *)
                    new_flag2 ~width ~stats ~fh:h ~cell:t.holder ~a:r.p
                      ~a_old:r.p_info ~b:i ~b_old:node_info_v ~old_child:r.node
                      ~new_child:(Internal new_node)
                | Leaf _ ->
                    new_flag1 ~width ~stats ~fh:h ~cell:t.holder ~node:r.p
                      ~old:r.p_info ~old_child:r.node
                      ~new_child:(Internal new_node)
              in
              (match fi with
              | Some fi when run_own t fi ->
                  attempt_done Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    ~site:"applied" true
              | Some _ ->
                  bump stats (fun s -> s.flag_failures);
                  attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    Obs.Attribution.Flag_cas_lost;
                  attempt (retry_pause stats bo) (n + 1)
              | None ->
                  attempt_retry Obs.Trace.Insert ~key:v ~attempt:n ~t0
                    (retry_cause2 r.p_info node_info_v);
                  attempt (retry_pause stats bo) (n + 1))
        end)
  in
  attempt Chaos.Backoff.init 1

let insert t k = insert_internal t (internal_key t k)

(* ------------------------------------------------------------------ *)
(* delete (lines 33-41) *)

let delete_internal t v =
  let width = t.width and stats = t.stats in
  let rec attempt bo n =
    bump stats (fun s -> s.attempts);
    let t0 = span_start () in
    let h = Atomic.get t.holder in
    match search_renew t h v with
    | None ->
        attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
          Obs.Attribution.Conflict;
        attempt (retry_pause stats bo) (n + 1)
    | Some r -> (
        descent stats (fun s -> s.descent_delete) r.depth;
        if not (key_in_trie r.node v r.rmvd) then
          attempt_done Obs.Trace.Delete ~key:v ~attempt:n ~t0 ~site:"absent"
            false
        else begin
          let node_sibling =
            Atomic.get r.p.children.(sibling_index ~width r.p v)
          in
          match (r.gp, r.gp_info) with
          | Some gp, Some gp_info -> (
              (* Line 40: flag gp, mark p (p leaves the trie), and swing
                 gp's child from p to node's sibling. *)
              match
                new_flag2 ~width ~stats ~fh:h ~cell:t.holder ~a:gp
                  ~a_old:gp_info ~b:r.p ~b_old:r.p_info ~old_child:r.p_node
                  ~new_child:node_sibling
              with
              | Some fi when run_own t fi ->
                  attempt_done Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    ~site:"applied" true
              | Some _ ->
                  bump stats (fun s -> s.flag_failures);
                  attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    Obs.Attribution.Flag_cas_lost;
                  attempt (retry_pause stats bo) (n + 1)
              | None ->
                  attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                    (retry_cause2 gp_info r.p_info);
                  attempt (retry_pause stats bo) (n + 1))
          | _ ->
              (* gp = null can only be observed transiently: a real key's leaf
                 always has an internal proper ancestor besides the root
                 (the sentinel on its side shares that subtree).  Retry. *)
              attempt_retry Obs.Trace.Delete ~key:v ~attempt:n ~t0
                Obs.Attribution.Conflict;
              attempt (retry_pause stats bo) (n + 1)
        end)
  in
  attempt Chaos.Backoff.init 1

let delete t k = delete_internal t (internal_key t k)

(* ------------------------------------------------------------------ *)
(* replace (lines 42-71) *)

let replace_internal t vd vi =
  let width = t.width and stats = t.stats in
  let restart bo n t0 =
    attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0
      Obs.Attribution.Conflict;
    bo
  in
  let rec attempt bo n =
    bump stats (fun s -> s.attempts);
    let t0 = span_start () in
    let h = Atomic.get t.holder in
    match search_renew t h vd with
    | None -> attempt (retry_pause stats (restart bo n t0)) (n + 1)
    | Some rd -> (
    descent stats (fun s -> s.descent_replace) rd.depth;
    if not (key_in_trie rd.node vd rd.rmvd) then
      attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0 ~site:"absent" false
    else begin
      match search_renew t h vi with
      | None -> attempt (retry_pause stats (restart bo n t0)) (n + 1)
      | Some ri -> (
      descent stats (fun s -> s.descent_replace) ri.depth;
      if key_in_trie ri.node vi ri.rmvd then
        attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0 ~site:"present"
          false
      else begin
        let node_info_i = Atomic.get (node_info ri.node) in
        let node_sibling_d =
          Atomic.get rd.p.children.(sibling_index ~width rd.p vd)
        in
        let node_d = rd.node and node_i = ri.node in
        let pd = rd.p and pi = ri.p in
        let leaf_d = match node_d with Leaf l -> l | Internal _ -> assert false in
        let same_node a b =
          match (a, b) with
          | Leaf x, Leaf y -> x == y
          | Internal x, Internal y -> x == y
          | _ -> false
        in
        let node_i_is ni (x : internal) =
          match ni with Internal i -> i == x | Leaf _ -> false
        in
        let fi =
          if
            rd.gp <> None
            && (not (same_node node_i node_d))
            && (not (node_i_is node_i pd))
            && (not (match rd.gp with Some gp -> node_i_is node_i gp | None -> false))
            && not (pi == pd)
          then begin
            (* General case (lines 51-57): insert vi at pi, then delete
               vd's leaf by swinging gp_d — two child CASes, linearized
               at the first; noded is flagged as the logically-removed
               leaf in between. *)
            let gpd = Option.get rd.gp and gpd_info = Option.get rd.gp_info in
            let copy_i = copy_node ~gen:h.hgen node_i in
            match
              create_node ~width ~stats ~gen:h.hgen copy_i (Leaf (new_leaf vi))
                (Some node_info_i)
            with
            | None -> None
            | Some new_node_i -> (
                match node_i with
                | Internal i ->
                    new_flag ~width ~stats ~fh:h ~cell:t.holder
                      ~flags:
                        [
                          (gpd, gpd_info);
                          (pd, rd.p_info);
                          (pi, ri.p_info);
                          (i, node_info_i);
                        ]
                      ~unflag:[ gpd; pi ]
                      ~pnodes:[ pi; gpd ]
                      ~old_children:[ node_i; rd.p_node ]
                      ~new_children:[ Internal new_node_i; node_sibling_d ]
                      ~rmv_leaf:(Some leaf_d)
                | Leaf _ ->
                    new_flag ~width ~stats ~fh:h ~cell:t.holder
                      ~flags:
                        [ (gpd, gpd_info); (pd, rd.p_info); (pi, ri.p_info) ]
                      ~unflag:[ gpd; pi ]
                      ~pnodes:[ pi; gpd ]
                      ~old_children:[ node_i; rd.p_node ]
                      ~new_children:[ Internal new_node_i; node_sibling_d ]
                      ~rmv_leaf:(Some leaf_d))
          end
          else if same_node node_i node_d then
            (* Special case 1 (lines 58-59): both searches ended at vd's
               leaf; replace it by a fresh leaf containing vi. *)
            new_flag1 ~width ~stats ~fh:h ~cell:t.holder ~node:pd
              ~old:rd.p_info ~old_child:node_i ~new_child:(Leaf (new_leaf vi))
          else if
            (node_i_is node_i pd
            && match rd.gp with Some gp -> pi == gp | None -> false)
            || (rd.gp <> None && pi == pd)
          then begin
            (* Special cases 2 and 3 (lines 60-64): the insertion point
               is pd itself (or shares it), and pd is removed by the
               deletion; one CAS replaces pd by a new node built from
               noded's sibling and the new leaf. *)
            let gpd = Option.get rd.gp and gpd_info = Option.get rd.gp_info in
            let sib_info = Atomic.get (node_info node_sibling_d) in
            match
              create_node ~width ~stats ~gen:h.hgen node_sibling_d
                (Leaf (new_leaf vi)) (Some sib_info)
            with
            | None -> None
            | Some new_node_i ->
                new_flag2 ~width ~stats ~fh:h ~cell:t.holder ~a:gpd
                  ~a_old:gpd_info ~b:pd ~b_old:rd.p_info ~old_child:rd.p_node
                  ~new_child:(Internal new_node_i)
          end
          else if
            match rd.gp with Some gp -> node_i_is node_i gp | None -> false
          then begin
            (* Special case 4 (lines 65-70): the insertion replaces gp_d,
               which the deletion also restructures; one CAS replaces
               gp_d by a new two-level node built from the two siblings
               and the new leaf. *)
            let gpd = Option.get rd.gp in
            let p_sibling_d =
              Atomic.get gpd.children.(sibling_index ~width gpd vd)
            in
            match
              create_node ~width ~stats ~gen:h.hgen node_sibling_d p_sibling_d
                None
            with
            | None -> None
            | Some new_child_i -> (
                match
                  create_node ~width ~stats ~gen:h.hgen (Internal new_child_i)
                    (Leaf (new_leaf vi)) None
                with
                | None -> None
                | Some new_node_i ->
                    new_flag ~width ~stats ~fh:h ~cell:t.holder
                      ~flags:
                        [ (pi, ri.p_info); (gpd, Option.get rd.gp_info); (pd, rd.p_info) ]
                      ~unflag:[ pi ] ~pnodes:[ pi ] ~old_children:[ node_i ]
                      ~new_children:[ Internal new_node_i ] ~rmv_leaf:None)
          end
          else None
        in
        match fi with
        | Some fi when run_own t fi ->
            attempt_done Obs.Trace.Replace ~key:vd ~attempt:n ~t0
              ~site:"applied" true
        | Some _ ->
            bump stats (fun s -> s.flag_failures);
            attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0
              Obs.Attribution.Flag_cas_lost;
            attempt (retry_pause stats bo) (n + 1)
        | None ->
            (* Recover the cause from every info value this attempt
               read; [new_flag]'s [None] collapses help-and-restart and
               read-read conflicts into one constructor. *)
            let cause =
              if
                flagged node_info_i || flagged rd.p_info || flagged ri.p_info
                || (match rd.gp_info with Some i -> flagged i | None -> false)
              then Obs.Attribution.Flagged_ancestor
              else Obs.Attribution.Conflict
            in
            attempt_retry Obs.Trace.Replace ~key:vd ~attempt:n ~t0 cause;
            attempt (retry_pause stats bo) (n + 1)
      end)
    end)
  in
  attempt Chaos.Backoff.init 1

(* replace(v, v) is always false: the sequential specification requires
   [remove] present *and* [add] absent, which a single key cannot satisfy. *)
let replace t ~remove ~add =
  let vd = internal_key t remove and vi = internal_key t add in
  if vd = vi then false else replace_internal t vd vi

(* ------------------------------------------------------------------ *)
(* Quiescent traversals and invariant checking (test/debug interface) *)

(* In-order traversal of the current leaves.  Like the Ctrie paper's
   snapshot-free iterator this is weakly consistent: each leaf is
   observed at the moment the traversal reaches it, so the view is a
   union of states the trie passed through, exact in quiescence. *)
let fold_leaves t ~init ~f =
  let rec go acc = function
    | Leaf l ->
        if
          l.key = 0
          || l.key = max_sentinel t
          || logically_removed (Atomic.get l.linfo)
        then acc
        else f acc l.key
    | Internal i -> go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
  in
  go init (Internal (Atomic.get t.holder).hroot)

let fold t ~init ~f = fold_leaves t ~init ~f:(fun acc k -> f acc (k - t.offset))
let iter t ~f = fold t ~init:() ~f:(fun () k -> f k)

(* Children are visited in label order, so leaves come out ascending. *)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k -> k :: acc))
let size t = fold_leaves t ~init:0 ~f:(fun acc _ -> acc + 1)

exception Found_key of int

let min_elt t =
  match fold t ~init:() ~f:(fun () k -> raise_notrace (Found_key k)) with
  | () -> None
  | exception Found_key k -> Some k

let max_elt t =
  (* Mirror traversal: rightmost real leaf first. *)
  let rec go = function
    | Leaf l ->
        if
          l.key <> 0
          && l.key <> max_sentinel t
          && not (logically_removed (Atomic.get l.linfo))
        then raise_notrace (Found_key (l.key - t.offset))
    | Internal i ->
        go (Atomic.get i.children.(1));
        go (Atomic.get i.children.(0))
  in
  match go (Internal (Atomic.get t.holder).hroot) with
  | () -> None
  | exception Found_key k -> Some k

(* Range query: visit keys in [lo, hi] in ascending order, pruning every
   subtree whose label interval is disjoint from the range — the
   quadtree-style search the paper's GIS application relies on. *)
let fold_range t ~lo ~hi ~init ~f =
  (* Clamp to the valid user-key range: [0, bound) for embedded-universe
     tries, [1, 2^w - 2] for raw-width tries (offset 0). *)
  let lo = max lo (1 - t.offset) and hi = min hi (t.bound - 1) in
  if lo > hi then init
  else begin
    let ilo = internal_key t lo and ihi = internal_key t hi in
    let width = t.width in
    let rec go acc node =
      match node with
      | Leaf l ->
          if
            l.key >= ilo && l.key <= ihi
            && not (logically_removed (Atomic.get l.linfo))
          then f acc (l.key - t.offset)
          else acc
      | Internal i ->
          (* The subtree under a node labelled (bits, len) holds exactly
             the keys in [bits << (width-len), (bits+1) << (width-len)). *)
          let shift = width - Label.length i.label in
          let node_lo = i.label.Label.bits lsl shift in
          let node_hi = node_lo lor ((1 lsl shift) - 1) in
          if node_hi < ilo || node_lo > ihi then acc
          else go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
    in
    go init (Internal (Atomic.get t.holder).hroot)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots.

   [snapshot t] atomically freezes the current generation and returns a
   view of it, in O(1) of the key count (O(#domains) for the slot scan):

     1. read the holder [h] and the root's info field; if a Flag or a
        Snap is pending, help it and retry;
     2. read the root's two children and build a fresh-generation root
        copy around them;
     3. CAS the root's info from the Unflag read in (1) to a [Snap]
        descriptor — the sandwich proves the children did not change
        since (2), because children are only CASed under a Flag and
        every unflag installs a physically fresh Unflag (no ABA);
     4. swing the holder to the new generation (helpers of the Snap do
        the same CAS, so this is idempotent) and release the old root's
        info field;
     5. help every descriptor published in the per-domain slots.

   Step 4's holder CAS is the linearization point.  Step 5 makes the
   frozen generation *physically* complete before [snapshot] returns:
   a descriptor that committed against [h] (its decision CAS saw the
   holder still equal to [h], hence ran before step 4) either already
   finished its child CASes or is still published in its owner's slot
   — the publish precedes the decision read, and our scan follows the
   holder CAS, so SC order leaves no third case.  Helping it completes
   those child CASes, which are the last writes the frozen subtree can
   ever receive: updates after step 4 renew every internal node they
   descend through into the new generation before CASing its children,
   and late straggler CASes of old descriptors fail by no-ABA.

   The frozen walk therefore ignores info fields entirely: every
   reachable non-sentinel leaf is an element of the frozen set.  A
   [logically_removed] mark on a shared leaf can only come from a
   replace that committed *after* the snapshot (pre-snapshot commits
   were physically completed in step 5, removing their victim from this
   structure; aborted attempts never set the mark), and such a leaf was
   present at the linearization point. *)

type view = {
  vwidth : int;
  voffset : int;
  vbound : int;
  vepoch : int;
  vroot : internal;
}

let snapshot t =
  let rec attempt () =
    let h = Atomic.get t.holder in
    let root = h.hroot in
    match Atomic.get root.iinfo with
    | (Flag _ | Snap _) as fi ->
        ignore (help fi);
        attempt ()
    | Unflag _ as ri ->
        let c0 = Atomic.get root.children.(0)
        and c1 = Atomic.get root.children.(1) in
        let gen' = ref () in
        let root' =
          {
            label = root.label;
            children = [| Atomic.make c0; Atomic.make c1 |];
            iinfo = Atomic.make (fresh_unflag ());
            gen = gen';
          }
        in
        let h' = { epoch = h.epoch + 1; hgen = gen'; hroot = root' } in
        let si = Snap { s_old = h; s_new = h'; s_cell = t.holder } in
        if Atomic.compare_and_set root.iinfo ri si then begin
          (* If this holder CAS fails, a concurrent snapshot already
             superseded [h] — then [h] is frozen all the same and this
             call linearizes at that snapshot's swing. *)
          ignore (Atomic.compare_and_set t.holder h h');
          ignore (Atomic.compare_and_set root.iinfo si (fresh_unflag ()));
          List.iter
            (fun slot ->
              match Atomic.get slot with
              | Some fi -> ignore (help fi)
              | None -> ())
            (Atomic.get t.slots);
          h
        end
        else attempt ()
  in
  let h = attempt () in
  {
    vwidth = t.width;
    voffset = t.offset;
    vbound = t.bound;
    vepoch = h.epoch;
    vroot = h.hroot;
  }

module View = struct
  type t = view

  let epoch v = v.vepoch

  let fold v ~init ~f =
    let maxs = (1 lsl v.vwidth) - 1 in
    let rec go acc = function
      | Leaf l ->
          if l.key = 0 || l.key = maxs then acc else f acc (l.key - v.voffset)
      | Internal i ->
          go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
    in
    go init (Internal v.vroot)

  let fold_range v ~lo ~hi ~init ~f =
    let lo = max lo (1 - v.voffset) and hi = min hi (v.vbound - 1) in
    if lo > hi then init
    else begin
      let ilo = lo + v.voffset and ihi = hi + v.voffset in
      let width = v.vwidth in
      let rec go acc node =
        match node with
        | Leaf l ->
            if l.key >= ilo && l.key <= ihi then f acc (l.key - v.voffset)
            else acc
        | Internal i ->
            let shift = width - Label.length i.label in
            let node_lo = i.label.Label.bits lsl shift in
            let node_hi = node_lo lor ((1 lsl shift) - 1) in
            if node_hi < ilo || node_lo > ihi then acc
            else
              go (go acc (Atomic.get i.children.(0))) (Atomic.get i.children.(1))
      in
      go init (Internal v.vroot)
    end

  let to_list v = List.rev (fold v ~init:[] ~f:(fun acc k -> k :: acc))
  let size v = fold v ~init:0 ~f:(fun acc _ -> acc + 1)

  let to_seq v =
    let maxs = (1 lsl v.vwidth) - 1 in
    let rec walk node tail () =
      match node with
      | Leaf l ->
          if l.key = 0 || l.key = maxs then tail ()
          else Seq.Cons (l.key - v.voffset, tail)
      | Internal i ->
          walk
            (Atomic.get i.children.(0))
            (fun () -> walk (Atomic.get i.children.(1)) tail ())
            ()
    in
    fun () -> walk (Internal v.vroot) (fun () -> Seq.Nil) ()
end

let snapshot_capability t =
  let v = snapshot t in
  Some
    Dset_intf.
      {
        v_epoch = View.epoch v;
        v_fold = (fun ~init ~f -> View.fold v ~init ~f);
        v_fold_range = (fun ~lo ~hi ~init ~f -> View.fold_range v ~lo ~hi ~init ~f);
        v_to_seq = (fun () -> View.to_seq v);
      }

let stats_snapshot t : snapshot option =
  match t.stats with
  | None -> None
  | Some s ->
      Some
        {
          attempts = Obs.Counter.sum s.attempts;
          helps_given = Obs.Counter.sum s.helps_given;
          helps_received = Obs.Counter.sum s.helps_received;
          flag_failures = Obs.Counter.sum s.flag_failures;
          backtracks = Obs.Counter.sum s.backtracks;
          backoff_waits = Obs.Counter.sum s.backoff_waits;
          descent_nodes_find = Obs.Counter.sum s.descent_find;
          descent_nodes_insert = Obs.Counter.sum s.descent_insert;
          descent_nodes_delete = Obs.Counter.sum s.descent_delete;
          descent_nodes_replace = Obs.Counter.sum s.descent_replace;
          descent_searches = Obs.Counter.sum s.descent_searches;
        }

(* Monotone cumulative counters only: the harness differences two of
   these alists around a timed window, so a percentile or a mean here
   would produce garbage.  Mean descent depth is derived downstream as
   descent_nodes_* / descent_searches over the deltas. *)
let stats_to_alist (s : snapshot) =
  [
    ("attempts", s.attempts);
    ("helps_given", s.helps_given);
    ("helps_received", s.helps_received);
    ("flag_failures", s.flag_failures);
    ("backtracks", s.backtracks);
    ("backoff_waits", s.backoff_waits);
    ("descent_nodes_find", s.descent_nodes_find);
    ("descent_nodes_insert", s.descent_nodes_insert);
    ("descent_nodes_delete", s.descent_nodes_delete);
    ("descent_nodes_replace", s.descent_nodes_replace);
    ("descent_searches", s.descent_searches);
  ]

let descent_stats t =
  match stats_snapshot t with
  | None -> None
  | Some s ->
      Some
        [
          ("descent_nodes_find", s.descent_nodes_find);
          ("descent_nodes_insert", s.descent_nodes_insert);
          ("descent_nodes_delete", s.descent_nodes_delete);
          ("descent_nodes_replace", s.descent_nodes_replace);
          ("descent_searches", s.descent_searches);
        ]

let descent_summary t =
  match t.stats with
  | None -> None
  | Some s -> Some (Obs.Histogram.snapshot s.descent_depth)

(* Structural invariants of the Patricia trie (paper Invariant 7 and the
   sentinel properties), plus the quiescence conditions the chaos suite
   audits after every fault-injection scenario: no residual flags on any
   reachable node (every descriptor must have been completed or backed
   out, including on behalf of stalled processes) and strictly ascending
   leaf keys (no duplicated or misplaced element).  Only meaningful in
   quiescent states. *)
let check_invariants t =
  let width = t.width in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let last_key = ref (-1) in
  let rec go (lab : Label.t) node =
    (match Atomic.get (node_info node) with
    | Unflag _ -> ()
    | Snap _ -> err "residual snapshot descriptor on reachable node"
    | Flag _ -> (
        match node with
        | Leaf l -> err "residual flag on reachable leaf %d" l.key
        | Internal i -> err "residual flag on internal %a" Label.pp i.label));
    match node with
    | Leaf l ->
        let kl = Label.of_key ~width l.key in
        if not (Label.is_prefix lab kl) then
          err "leaf %d not under its path label %a" l.key Label.pp lab;
        if l.key <= !last_key then
          err "leaf %d out of order (previous leaf %d)" l.key !last_key;
        last_key := l.key
    | Internal i ->
        if not (Label.equal i.label lab) && not (Label.is_proper_prefix lab i.label)
        then err "internal label %a does not extend path %a" Label.pp i.label Label.pp lab;
        if Label.length i.label >= width then
          err "internal label %a too long" Label.pp i.label;
        let c0 = Atomic.get i.children.(0) and c1 = Atomic.get i.children.(1) in
        let check_child dir c =
          let expect = Label.extend i.label dir in
          let cl = node_label ~width c in
          if not (Label.is_prefix expect cl) then
            err "child %d of %a has label %a (expected prefix %a)" dir Label.pp
              i.label Label.pp cl Label.pp expect;
          if Label.length cl <= Label.length i.label then
            err "child of %a has shorter label %a" Label.pp i.label Label.pp cl
        in
        check_child 0 c0;
        check_child 1 c1;
        go (Label.extend i.label 0) c0;
        go (Label.extend i.label 1) c1
  in
  let root = (Atomic.get t.holder).hroot in
  go Label.empty (Internal root);
  (* The two sentinels must always be logically in the trie (Lemma 62). *)
  let rec find_leaf k = function
    | Leaf l -> l.key = k
    | Internal i ->
        find_leaf k (Atomic.get i.children.(Label.next_bit_of_key ~width i.label k))
  in
  if not (find_leaf 0 (Internal root)) then err "missing sentinel 00...0";
  if not (find_leaf (max_sentinel t) (Internal root)) then
    err "missing sentinel 11...1";
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Shape census (Obs.Shape): weakly-consistent walk like [fold_leaves],
   exact in quiescence.  Per-node word estimates, 64-bit layout:

     internal:  Internal wrapper 2 + record 5 (incl. gen) + Label.t 3
                + children array 3 + 2 child Atomics 4
                + iinfo Atomic 2 + Unflag wrapper/ref 4     = 23
     leaf:      Leaf wrapper 2 + record 3 + linfo Atomic 2
                + Unflag wrapper/ref 4                      = 11

   (an Atomic.t is a one-field record; Unflag carries a fresh ref).
   [measured_words] cross-checks the estimate with
   [Obj.reachable_words] from the root, which also charges shared or
   flag-retained blocks the estimate ignores. *)
let internal_words = 23
let leaf_words = 11

let census t =
  let a = Obs.Shape.acc ~structure:"PAT" in
  let rec go depth node =
    match node with
    | Leaf l ->
        let sentinel = l.key = 0 || l.key = max_sentinel t in
        let keys =
          if sentinel || logically_removed (Atomic.get l.linfo) then 0 else 1
        in
        Obs.Shape.leaf a ~depth ~keys ~sentinel ~words:leaf_words
    | Internal i ->
        Obs.Shape.internal a ~depth ~prefix_len:(Label.length i.label)
          ~children:2 ~words:internal_words;
        go (depth + 1) (Atomic.get i.children.(0));
        go (depth + 1) (Atomic.get i.children.(1))
  in
  let root = (Atomic.get t.holder).hroot in
  go 0 (Internal root);
  let measured_words = Obj.reachable_words (Obj.repr root) in
  Some (Obs.Shape.finish ~measured_words a)

(* ------------------------------------------------------------------ *)
(* Test-only access to the coordination machinery, used to exercise the
   helping paths deterministically (e.g. a process that "crashes" after
   flagging, which others must complete — paper Section IV, part 4). *)

module For_testing = struct
  type descriptor = info

  let help = help

  (* Run one insert attempt up to and including descriptor creation, but
     do not apply it.  Returns None if the attempt would have restarted. *)
  let prepare_insert t k =
    let v = internal_key t k in
    let width = t.width and stats = t.stats in
    let h = Atomic.get t.holder in
    let r = search t v in
    if key_in_trie r.node v r.rmvd then None
    else
      let node_info_v = Atomic.get (node_info r.node) in
      let node_copy = copy_node ~gen:h.hgen r.node in
      match
        create_node ~width:t.width ~stats ~gen:h.hgen node_copy
          (Leaf (new_leaf v)) (Some node_info_v)
      with
      | None -> None
      | Some new_node -> (
          match r.node with
          | Internal i ->
              new_flag ~width ~stats ~fh:h ~cell:t.holder
                ~flags:[ (r.p, r.p_info); (i, node_info_v) ]
                ~unflag:[ r.p ] ~pnodes:[ r.p ] ~old_children:[ r.node ]
                ~new_children:[ Internal new_node ] ~rmv_leaf:None
          | Leaf _ ->
              new_flag ~width ~stats ~fh:h ~cell:t.holder
                ~flags:[ (r.p, r.p_info) ]
                ~unflag:[ r.p ] ~pnodes:[ r.p ] ~old_children:[ r.node ]
                ~new_children:[ Internal new_node ] ~rmv_leaf:None)

  (* Run one delete attempt up to descriptor creation without applying
     it.  Returns None if the key is absent or the attempt would have
     restarted. *)
  let prepare_delete t k =
    let v = internal_key t k in
    let width = t.width in
    let h = Atomic.get t.holder in
    let r = search t v in
    if not (key_in_trie r.node v r.rmvd) then None
    else
      let node_sibling = Atomic.get r.p.children.(sibling_index ~width r.p v) in
      match (r.gp, r.gp_info) with
      | Some gp, Some gp_info ->
          new_flag2 ~width ~stats:t.stats ~fh:h ~cell:t.holder ~a:gp
            ~a_old:gp_info ~b:r.p ~b_old:r.p_info ~old_child:r.p_node
            ~new_child:node_sibling
      | _ -> None

  (* Perform only the flagging phase of a descriptor, simulating a
     process that dies between flagging and the child CAS. *)
  let flag_only fi =
    match fi with
    | Flag f -> flag_phase fi f
    | Unflag _ | Snap _ -> invalid_arg "flag_only: not a Flag descriptor"

  let set_help_hook h = help_counter_hook := h

  (* Count of nodes currently flagged along the search path of [k]. *)
  let flags_on_path t k =
    let v = internal_key t k in
    let width = t.width in
    let rec go acc (node : node) =
      match node with
      | Leaf l -> (
          acc + match Atomic.get l.linfo with Flag _ -> 1 | _ -> 0)
      | Internal i ->
          let acc =
            acc + match Atomic.get i.iinfo with Flag _ -> 1 | _ -> 0
          in
          if Label.is_prefix_of_key ~width i.label v then
            go acc (Atomic.get i.children.(Label.next_bit_of_key ~width i.label v))
          else acc
    in
    go 0 (Internal (Atomic.get t.holder).hroot)
end

let name = "PAT"

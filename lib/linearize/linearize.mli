(** Linearizability checking for concurrent-set histories (Wing & Gong
    style exhaustive search with memoization).

    Specialized to histories of at most {!max_ops} operations over key
    universes of at most {!max_universe} keys, so both the set state and
    the linearized-operation set fit in int bitmasks. *)

type op_kind =
  | Insert of int
  | Delete of int
  | Member of int
  | Replace of int * int  (** remove, add *)
  | Scan of int * int
      (** [lo, hi]: an atomic multi-key read of the range — a frozen
          snapshot fold or a wire SCAN page *)

(** A boolean acknowledgement, or the bitmask of keys a [Scan]
    returned.  Recording the whole returned key set is what makes
    snapshots checkable: the witness order must contain a moment whose
    masked state equals the bitmask exactly. *)
type res = Bool of bool | Keys of int

type recorded = {
  kind : op_kind;
  result : res;
  invoke : int;  (** globally unique, increasing timestamps *)
  return : int;
}

val max_ops : int
val max_universe : int

val apply : int -> op_kind -> res * int
(** The sequential set specification over a bitmask state: expected
    result and post-state.  [Replace] succeeds iff the removed key is
    present, the added key absent and the two differ; on failure the
    state is unchanged.  [Scan (lo, hi)] returns [Keys] of the state
    masked to the range and leaves the state unchanged. *)

val check : ?initial:int -> recorded array -> bool
(** [check history] is [true] iff some sequential ordering of the
    operations respects real time (an operation that returned before
    another's invocation precedes it) and reproduces every recorded
    result from the [initial] state (a bitmask, default empty).
    @raise Invalid_argument if the history exceeds {!max_ops} operations
    or uses keys outside [\[0, max_universe)]. *)

(** Concurrent history recording: a global clock plus per-thread buffers
    so recording does not serialize the threads beyond two fetch-adds. *)
module Recorder : sig
  type t

  val create : threads:int -> t

  val record : t -> thread:int -> op_kind -> (unit -> bool) -> bool
  (** [record r ~thread kind run] executes [run ()] between two clock
      ticks and stores the completed operation; returns [run]'s result. *)

  val record_scan : t -> thread:int -> lo:int -> hi:int -> (unit -> int) -> int
  (** [record_scan r ~thread ~lo ~hi run] times a multi-key read:
      [run ()] returns the bitmask of keys in [\[lo, hi\]] the scan
      reported, recorded as a [Scan] operation with a [Keys] result. *)

  val history : t -> recorded array
  (** All recorded operations (call after the threads have joined). *)
end

(** Linearizability checking for concurrent-set histories.

    The tests record small concurrent histories (operations with invoke
    and return timestamps and their results) and this module decides —
    by exhaustive search in the style of Wing & Gong — whether some
    sequential order of the operations (a) respects real time (an
    operation that returned before another was invoked must precede it)
    and (b) yields exactly the recorded results under the sequential set
    specification, including the paper's replace operation.

    To keep the search tractable the checker is specialized to histories
    of at most 62 operations over key universes of at most 62 keys: both
    the set state and the set of already-linearized operations are then
    bitmasks, and memoizing (state, linearized) pairs makes the search
    fast in practice. *)

type op_kind =
  | Insert of int
  | Delete of int
  | Member of int
  | Replace of int * int (* remove, add *)
  | Scan of int * int (* lo, hi: an atomic multi-key read of [lo, hi] *)

(* Boolean ops record their acknowledgement; a scan records the whole
   key set it returned, as a bitmask — which is what makes a frozen
   snapshot checkable: the witness order must contain a moment whose
   masked state equals the returned keys exactly. *)
type res = Bool of bool | Keys of int

type recorded = {
  kind : op_kind;
  result : res;
  invoke : int; (* strictly increasing global timestamps *)
  return : int;
}

let max_ops = 62
let max_universe = 62

(* Sequential specification over a bitmask state.  Returns the expected
   result and the post-state. *)
let apply state = function
  | Insert k ->
      let present = state land (1 lsl k) <> 0 in
      (Bool (not present), state lor (1 lsl k))
  | Delete k ->
      let present = state land (1 lsl k) <> 0 in
      (Bool present, state land lnot (1 lsl k))
  | Member k -> (Bool (state land (1 lsl k) <> 0), state)
  | Replace (kd, ki) ->
      let d_in = state land (1 lsl kd) <> 0 in
      let i_in = state land (1 lsl ki) <> 0 in
      if kd <> ki && d_in && not i_in then
        (Bool true, state land lnot (1 lsl kd) lor (1 lsl ki))
      else (Bool false, state)
  | Scan (lo, hi) ->
      let mask = ((1 lsl (hi - lo + 1)) - 1) lsl lo in
      (Keys (state land mask), state)

let check_key op =
  match op.kind with
  | Insert k | Delete k | Member k ->
      if k < 0 || k >= max_universe then invalid_arg "Linearize: key too large"
  | Replace (a, b) ->
      if a < 0 || a >= max_universe || b < 0 || b >= max_universe then
        invalid_arg "Linearize: key too large"
  | Scan (lo, hi) ->
      if lo < 0 || hi < lo || hi >= max_universe then
        invalid_arg "Linearize: scan range invalid"

(** [check ?initial history] is [true] iff the history is linearizable
    with respect to the set specification starting from [initial]
    (a bitmask of present keys, default empty). *)
let check ?(initial = 0) (history : recorded array) =
  let n = Array.length history in
  if n > max_ops then invalid_arg "Linearize.check: too many operations";
  Array.iter check_key history;
  if n = 0 then true
  else begin
    let all_done = (1 lsl n) - 1 in
    let memo = Hashtbl.create 1024 in
    (* An operation is a candidate for the next linearization point iff
       no other pending operation returned before it was invoked. *)
    let rec go linearized state =
      if linearized = all_done then true
      else
        let key = (linearized, state) in
        if Hashtbl.mem memo key then false (* already explored, failed *)
        else begin
          let min_return = ref max_int in
          for i = 0 to n - 1 do
            if linearized land (1 lsl i) = 0 then
              if history.(i).return < !min_return then
                min_return := history.(i).return
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let idx = !i in
            incr i;
            if linearized land (1 lsl idx) = 0 then begin
              let op = history.(idx) in
              if op.invoke <= !min_return then begin
                let expected, state' = apply state op.kind in
                if expected = op.result then
                  if go (linearized lor (1 lsl idx)) state' then ok := true
              end
            end
          done;
          if not !ok then Hashtbl.add memo key ();
          !ok
        end
    in
    go 0 initial
  end

(* ------------------------------------------------------------------ *)
(* History recording *)

module Recorder = struct
  type t = {
    clock : int Atomic.t;
    buffers : recorded list ref array; (* one per thread, no sharing *)
  }

  let create ~threads =
    { clock = Atomic.make 0; buffers = Array.init threads (fun _ -> ref []) }

  (** [record r ~thread kind run] times [run ()] around the global clock
      and stores the completed operation in the thread's buffer. *)
  let record r ~thread kind run =
    let invoke = Atomic.fetch_and_add r.clock 1 in
    let result = run () in
    let return = Atomic.fetch_and_add r.clock 1 in
    r.buffers.(thread) :=
      { kind; result = Bool result; invoke; return } :: !(r.buffers.(thread));
    result

  (** [record_scan r ~thread ~lo ~hi run] times a multi-key read: [run
      ()] returns the bitmask of keys in [\[lo, hi\]] the scan reported
      (a frozen snapshot fold, a wire SCAN page).  The checker then
      demands a linearization point at which the masked state equals
      that bitmask exactly — the property that separates an atomic
      snapshot from a merely weakly-consistent walk. *)
  let record_scan r ~thread ~lo ~hi run =
    let invoke = Atomic.fetch_and_add r.clock 1 in
    let keys = run () in
    let return = Atomic.fetch_and_add r.clock 1 in
    r.buffers.(thread) :=
      { kind = Scan (lo, hi); result = Keys keys; invoke; return }
      :: !(r.buffers.(thread));
    keys

  let history r =
    Array.of_list (List.concat_map (fun b -> !b) (Array.to_list r.buffers))
end

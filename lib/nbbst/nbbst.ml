(* Non-blocking binary search tree of

     F. Ellen, P. Fatourou, E. Ruppert, F. van Breugel,
     "Non-blocking binary search trees", PODC 2010.

   This is the "BST" baseline of the Patricia-trie paper's evaluation, and
   also the algorithm whose flag/help coordination scheme the Patricia trie
   generalizes.

   The tree is leaf-oriented: internal nodes hold routing keys, elements
   live in leaves, and every internal node has exactly two children.  A
   search for k goes left iff k < node.key.  Two sentinel keys inf1 < inf2
   (here [universe] and [universe + 1]) pad the initial tree so the root is
   never replaced.

   Each internal node has an [update] field holding a (state, info) pair
   that is CASed as a unit.  We represent the pair as a fresh immutable
   record per write; [Atomic.compare_and_set]'s physical equality then
   gives exactly the pair-CAS of the paper with no ABA (a record is never
   reused). *)

type node = Leaf of int | Node of internal

and internal = {
  key : int;
  left : node Atomic.t;
  right : node Atomic.t;
  update : update Atomic.t;
}

and update = { state : state; info : info }

and state = Clean | IFlag | DFlag | Mark

and info = No_info | I of iinfo | D of dinfo

(* IInfo: p's child [l] (the physically-read leaf value) is to be replaced
   by [new_internal]. *)
and iinfo = { ip : internal; il : node; new_internal : node }

(* DInfo: gp's child [p_node] is to be replaced by the sibling of leaf
   [dl]; [pupdate] is the value read from p.update before flagging gp. *)
and dinfo = {
  dgp : internal;
  dp : internal;
  dp_node : node;
  dl : node;
  pupdate : update;
}

type t = { root : internal; inf1 : int; inf2 : int }

let clean () = { state = Clean; info = No_info }

let new_internal key left right =
  {
    key;
    left = Atomic.make left;
    right = Atomic.make right;
    update = Atomic.make (clean ());
  }

let name = "BST"

let create ~universe () =
  if universe < 1 then invalid_arg "Nbbst.create: universe must be >= 1";
  let inf1 = universe and inf2 = universe + 1 in
  { root = new_internal inf2 (Leaf inf1) (Leaf inf2); inf1; inf2 }

type search_result = {
  gp : internal option;
  p : internal;
  p_node : node;
  l : node;
  pupdate : update;
  gpupdate : update option;
}

let search t k =
  let rec go gp gpupdate (p : internal) p_node pupdate =
    let child = if k < p.key then Atomic.get p.left else Atomic.get p.right in
    match child with
    | Node i -> go (Some p) (Some pupdate) i child (Atomic.get i.update)
    | Leaf _ -> { gp; p; p_node; l = child; pupdate; gpupdate }
  in
  go None None t.root (Node t.root) (Atomic.get t.root.update)

let leaf_key = function Leaf k -> k | Node _ -> assert false

let member t k =
  let r = search t k in
  leaf_key r.l = k

(* CAS the child pointer of [p] that a key equal to [new_node]'s route
   would follow (the paper's CAS-Child). *)
let cas_child (p : internal) (old_node : node) (new_node : node) route_key =
  let field = if route_key < p.key then p.left else p.right in
  ignore (Atomic.compare_and_set field old_node new_node)

let help_insert_u (u : update) =
  match u.info with
  | I op ->
      cas_child op.ip op.il op.new_internal (leaf_key op.il);
      ignore
        (Atomic.compare_and_set op.ip.update u { state = Clean; info = I op })
  | _ -> assert false

let help_marked (u_dflag : update) (op : dinfo) =
  (* dchild CAS: replace p by the sibling of l, then dunflag gp. *)
  let other =
    if Atomic.get op.dp.right == op.dl then Atomic.get op.dp.left
    else Atomic.get op.dp.right
  in
  cas_child op.dgp op.dp_node other
    (match other with Node i -> i.key | Leaf k -> k);
  ignore
    (Atomic.compare_and_set op.dgp.update u_dflag { state = Clean; info = D op })

let rec help_delete (u_dflag : update) (op : dinfo) =
  (* mark CAS on p; if it (or a helper's) succeeded, finish; otherwise the
     deletion is aborted: help whatever got in the way and backtrack. *)
  ignore
    (Atomic.compare_and_set op.dp.update op.pupdate { state = Mark; info = D op });
  let result = Atomic.get op.dp.update in
  match result with
  | { state = Mark; info = D op' } when op' == op ->
      help_marked u_dflag op;
      true
  | _ ->
      help result;
      ignore
        (Atomic.compare_and_set op.dgp.update u_dflag
           { state = Clean; info = D op });
      false

and help (u : update) =
  match (u.state, u.info) with
  | IFlag, I _ -> help_insert_u u
  | DFlag, D op -> ignore (help_delete u op)
  | Mark, D op -> (
      (* Find the DFlag record on gp: it is the one op installed; helpers
         of a marked node finish the removal. *)
      match Atomic.get op.dgp.update with
      | { state = DFlag; info = D op' } as u' when op' == op -> help_marked u' op
      | _ -> ())
  | _ -> ()

let insert t k =
  if k < 0 || k >= t.inf1 then invalid_arg "Nbbst.insert: key out of universe";
  let rec attempt () =
    let r = search t k in
    if leaf_key r.l = k then false
    else if r.pupdate.state <> Clean then begin
      help r.pupdate;
      attempt ()
    end
    else begin
      let old_key = leaf_key r.l in
      let new_leaf = Leaf k in
      (* The old leaf node is reused as a child of the new internal node,
         exactly as in the paper (no copy is needed: leaves are immutable
         and the old leaf is not removed from the tree). *)
      let inner =
        if k < old_key then new_internal old_key new_leaf r.l
        else new_internal k r.l new_leaf
      in
      let op = { ip = r.p; il = r.l; new_internal = Node inner } in
      let u = { state = IFlag; info = I op } in
      if Atomic.compare_and_set r.p.update r.pupdate u then begin
        help_insert_u u;
        true
      end
      else begin
        help (Atomic.get r.p.update);
        attempt ()
      end
    end
  in
  attempt ()

let delete t k =
  if k < 0 || k >= t.inf1 then invalid_arg "Nbbst.delete: key out of universe";
  let rec attempt () =
    let r = search t k in
    if leaf_key r.l <> k then false
    else
      match (r.gp, r.gpupdate) with
      | Some gp, Some gpupdate ->
          if gpupdate.state <> Clean then begin
            help gpupdate;
            attempt ()
          end
          else if r.pupdate.state <> Clean then begin
            help r.pupdate;
            attempt ()
          end
          else begin
            let op =
              {
                dgp = gp;
                dp = r.p;
                dp_node = r.p_node;
                dl = r.l;
                pupdate = r.pupdate;
              }
            in
            let u = { state = DFlag; info = D op } in
            if Atomic.compare_and_set gp.update gpupdate u then begin
              if help_delete u op then true else attempt ()
            end
            else begin
              help (Atomic.get gp.update);
              attempt ()
            end
          end
      | _ ->
          (* p is the root: impossible for a real key, since the sentinel
             leaves keep every real leaf at depth >= 2. *)
          attempt ()
  in
  attempt ()

let fold_leaves t ~init ~f =
  let rec go acc = function
    | Leaf k -> if k >= t.inf1 then acc else f acc k
    | Node i -> go (go acc (Atomic.get i.left)) (Atomic.get i.right)
  in
  go init (Node t.root)

let to_list t = fold_leaves t ~init:[] ~f:(fun acc k -> k :: acc) |> List.sort Int.compare
let size t = fold_leaves t ~init:0 ~f:(fun acc _ -> acc + 1)

(* Structural invariants: leaf-oriented BST order and two children per
   internal node (the latter holds by construction). *)
let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go lo hi = function
    | Leaf k ->
        if not (lo <= k && k < hi) then err "leaf %d outside (%d, %d)" k lo hi
    | Node i ->
        if not (lo <= i.key && i.key <= hi) then
          err "internal key %d outside (%d, %d)" i.key lo hi;
        go lo i.key (Atomic.get i.left);
        go i.key hi (Atomic.get i.right)
  in
  go min_int (t.inf2 + 1) (Node t.root);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* Structure forensics: this baseline is not instrumented; [None] is
   the registry's explicit "unsupported" marker for the census and
   descent-cost capabilities. *)
let census _ = None
let descent_stats _ = None

let snapshot _ = None

(** Non-blocking binary search tree of Ellen, Fatourou, Ruppert & van
    Breugel (PODC 2010) — the "BST" baseline of the Patricia-trie
    paper's evaluation, and the origin of the flag/help coordination
    scheme the trie generalizes.

    Leaf-oriented: elements live in leaves, internal nodes are routing
    keys, every internal node has exactly two children.  [insert] and
    [delete] are lock-free; [member] is read-only (but not wait-free in
    general, since the tree is unbalanced and updates may lengthen the
    search path unboundedly — one of the contrasts the paper draws). *)

type t

val name : string
(** ["BST"]. *)

val create : universe:int -> unit -> t
(** An empty set over keys [\[0, universe)]; [universe] and
    [universe + 1] act as the paper's sentinel keys inf1 < inf2. *)

val insert : t -> int -> bool
(** Adds the key; [true] iff it was absent.  Lock-free. *)

val delete : t -> int -> bool
(** Removes the key; [true] iff it was present.  Lock-free. *)

val member : t -> int -> bool
(** Read-only search. *)

val to_list : t -> int list
(** Sorted contents (quiescent accuracy). *)

val size : t -> int

val check_invariants : t -> (unit, string) result
(** Leaf-oriented BST order: every leaf and routing key within the key
    interval induced by its ancestors. *)

val census : t -> Dset_intf.census option
(** Always [None] — the explicit "unsupported" marker of the registry's
    shape-census capability; this baseline has no census walker. *)

val descent_stats : t -> (string * int) list option
(** Always [None] — descent-cost accounting is not wired into this
    baseline's search loop. *)

val snapshot : t -> Dset_intf.view option
(** Always [None] — the explicit "unsupported" marker of the atomic
    snapshot capability; this baseline's weakly-consistent traversals
    cannot masquerade as a frozen linearizable view. *)

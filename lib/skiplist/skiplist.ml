(* Lock-free skip list, the "SL" baseline of the paper's evaluation.

   The paper benchmarks java.util.concurrent.ConcurrentSkipListMap, Doug
   Lea's implementation from the Fomitchev/Ruppert-Fraser lock-free skip
   list family.  We implement the standard CAS-based lock-free skip list
   with Harris-style marked successor pointers, following the
   LockFreeSkipList of Herlihy & Shavit ("The Art of Multiprocessor
   Programming", ch. 14), which is the same algorithm family.

   A successor reference is an immutable (node, marked) record, freshly
   allocated per write; physical-equality CAS on it plays the role of
   Java's AtomicMarkableReference with no ABA.  A node is logically
   deleted when the mark in its *own* level-0 successor record is set;
   higher levels are only an index and are marked/unlinked opportunistically. *)

let max_level = 24 (* supports ~2^24 keys at p = 1/2 *)

type node = { key : int; next : succ Atomic.t array }
and succ = { succ_node : node; marked : bool }

type t = { head : node; tail : node; universe : int; seed : int Atomic.t }

let name = "SL"

let create ~universe () =
  if universe < 1 then invalid_arg "Skiplist.create: universe must be >= 1";
  let tail = { key = max_int; next = [||] } in
  let head =
    {
      key = min_int;
      next =
        Array.init max_level (fun _ ->
            Atomic.make { succ_node = tail; marked = false });
    }
  in
  { head; tail; universe; seed = Atomic.make 0x9E3779B9 }

(* Geometric tower height with p = 1/2 from a cheap shared mixed counter;
   the race on the counter only perturbs the distribution harmlessly. *)
let random_level t =
  let s = Atomic.fetch_and_add t.seed 0x6A09E667 in
  let x = s * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let rec go lvl bits =
    if lvl >= max_level - 1 || bits land 1 = 0 then lvl else go (lvl + 1) (bits lsr 1)
  in
  go 0 x

(* [find t key preds succs] fills preds/succs so that at every level
   preds.(l).key < key <= succs.(l).key with an unmarked link between
   them, snipping marked nodes it passes; restarts when a snip races.
   Returns true iff an unmarked node with [key] sits at level 0. *)
let find t key preds succs =
  let rec retry () =
    let rec down (pred : node) lvl =
      let rec step pred curr =
        if curr == t.tail then finish pred curr
        else
          let s = Atomic.get curr.next.(lvl) in
          if s.marked then begin
            (* curr is deleted: unlink it at this level before moving on. *)
            let exp = Atomic.get pred.next.(lvl) in
            if
              exp.succ_node == curr && (not exp.marked)
              && Atomic.compare_and_set pred.next.(lvl) exp
                   { succ_node = s.succ_node; marked = false }
            then step pred s.succ_node
            else retry ()
          end
          else if curr.key < key then step curr s.succ_node
          else finish pred curr
      and finish pred curr =
        preds.(lvl) <- pred;
        succs.(lvl) <- curr;
        if lvl = 0 then curr != t.tail && curr.key = key else down pred (lvl - 1)
      in
      step pred (Atomic.get pred.next.(lvl)).succ_node
    in
    down t.head (max_level - 1)
  in
  retry ()

let member t key =
  if key < 0 || key >= t.universe then
    invalid_arg "Skiplist.member: key out of universe";
  (* Same traversal as [find] but read-only: marked nodes are skipped,
     never snipped. *)
  let rec down (pred : node) lvl =
    let rec step pred curr =
      if curr == t.tail then if lvl = 0 then false else down pred (lvl - 1)
      else
        let s = Atomic.get curr.next.(lvl) in
        if s.marked then step pred s.succ_node
        else if curr.key < key then step curr s.succ_node
        else if lvl = 0 then curr.key = key
        else down pred (lvl - 1)
    in
    step pred (Atomic.get pred.next.(lvl)).succ_node
  in
  down t.head (max_level - 1)

let insert t key =
  if key < 0 || key >= t.universe then
    invalid_arg "Skiplist.insert: key out of universe";
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  let rec attempt () =
    if find t key preds succs then false
    else begin
      let top = random_level t in
      let node =
        {
          key;
          next =
            Array.init (top + 1) (fun lvl ->
                Atomic.make { succ_node = succs.(lvl); marked = false });
        }
      in
      (* The level-0 CAS linearizes the insert. *)
      let pred = preds.(0) and succ = succs.(0) in
      let exp = Atomic.get pred.next.(0) in
      if not (exp.succ_node == succ && not exp.marked) then attempt ()
      else if
        not
          (Atomic.compare_and_set pred.next.(0) exp
             { succ_node = node; marked = false })
      then attempt ()
      else begin
        (* Build the index levels.  Failures here cost only search time;
           we stop early if the node is concurrently deleted. *)
        for lvl = 1 to top do
          let rec link () =
            let s = Atomic.get node.next.(lvl) in
            if not s.marked then begin
              let pred = preds.(lvl) and succ = succs.(lvl) in
              (* Keep the node's forward pointer aimed at the insertion
                 point so the level stays key-monotone. *)
              if
                s.succ_node == succ
                || Atomic.compare_and_set node.next.(lvl) s
                     { succ_node = succ; marked = false }
              then begin
                let exp = Atomic.get pred.next.(lvl) in
                if
                  not
                    (exp.succ_node == succ && (not exp.marked)
                    && Atomic.compare_and_set pred.next.(lvl) exp
                         { succ_node = node; marked = false })
                then if find t key preds succs && succs.(0) == node then link ()
              end
              else link ()
            end
          in
          link ()
        done;
        true
      end
    end
  in
  attempt ()

let delete t key =
  if key < 0 || key >= t.universe then
    invalid_arg "Skiplist.delete: key out of universe";
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  let rec attempt () =
    if not (find t key preds succs) then false
    else begin
      let victim = succs.(0) in
      let top = Array.length victim.next - 1 in
      (* Mark the index levels top-down; only the level-0 mark decides
         which deleter wins. *)
      for lvl = top downto 1 do
        let rec mark () =
          let s = Atomic.get victim.next.(lvl) in
          if
            (not s.marked)
            && not
                 (Atomic.compare_and_set victim.next.(lvl) s
                    { succ_node = s.succ_node; marked = true })
          then mark ()
        in
        mark ()
      done;
      let rec mark_bottom () =
        let s = Atomic.get victim.next.(0) in
        if s.marked then false
        else if
          Atomic.compare_and_set victim.next.(0) s
            { succ_node = s.succ_node; marked = true }
        then begin
          (* Physically unlink with a cleanup pass. *)
          ignore (find t key preds succs);
          true
        end
        else mark_bottom ()
      in
      if mark_bottom () then true else attempt ()
    end
  in
  attempt ()

let fold t ~init ~f =
  let rec go acc (n : node) =
    if n == t.tail then acc
    else
      let s = Atomic.get n.next.(0) in
      let acc = if s.marked then acc else f acc n.key in
      go acc s.succ_node
  in
  go init (Atomic.get t.head.next.(0)).succ_node

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k -> k :: acc))
let size t = fold t ~init:0 ~f:(fun acc _ -> acc + 1)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Unmarked level-0 keys strictly increase; towers are well-formed. *)
  let rec walk prev (n : node) =
    if n != t.tail then begin
      let s = Atomic.get n.next.(0) in
      if not s.marked then
        if n.key <= prev then err "keys not strictly increasing at %d" n.key;
      walk (if s.marked then prev else n.key) s.succ_node
    end
  in
  walk min_int (Atomic.get t.head.next.(0)).succ_node;
  for lvl = 1 to max_level - 1 do
    let rec walk (n : node) =
      if n != t.tail then
        if Array.length n.next <= lvl then err "link into short tower at %d" n.key
        else walk (Atomic.get n.next.(lvl)).succ_node
    in
    walk (Atomic.get t.head.next.(lvl)).succ_node
  done;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* Structure forensics: this baseline is not instrumented; [None] is
   the registry's explicit "unsupported" marker for the census and
   descent-cost capabilities. *)
let census _ = None
let descent_stats _ = None

let snapshot _ = None

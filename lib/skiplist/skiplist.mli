(** Lock-free skip list (Fraser/Herlihy-Shavit style, the algorithm
    family behind java.util.concurrent.ConcurrentSkipListMap) — the "SL"
    baseline of the Patricia-trie paper's evaluation.

    A node is logically deleted by marking its own level-0 successor
    reference; higher levels are an index that searches repair
    opportunistically.  [insert] and [delete] are lock-free; [member] is
    a read-only traversal. *)

type t

val max_level : int

val name : string
(** ["SL"]. *)

val create : universe:int -> unit -> t
val insert : t -> int -> bool
val delete : t -> int -> bool
val member : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_invariants : t -> (unit, string) result
(** Level-0 keys strictly increasing; no index link points into a tower
    shorter than its level. *)

val census : t -> Dset_intf.census option
(** Always [None] — the explicit "unsupported" marker of the registry's
    shape-census capability; this baseline has no census walker. *)

val descent_stats : t -> (string * int) list option
(** Always [None] — descent-cost accounting is not wired into this
    baseline's search loop. *)

val snapshot : t -> Dset_intf.view option
(** Always [None] — the explicit "unsupported" marker of the atomic
    snapshot capability; this baseline's weakly-consistent traversals
    cannot masquerade as a frozen linearizable view. *)

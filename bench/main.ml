(* Benchmark driver regenerating every figure of the paper's evaluation
   (Section V) plus a single-threaded Bechamel micro-benchmark suite.

       Fig. 8: uniform keys, range (0, 10^6), ratios i5-d5-f90 and
               i50-d50-f0, throughput vs threads, all six structures.
       Fig. 9: same but range (0, 10^2) — very high contention.
       Fig. 10: replace workload i10-d10-r80, range (0, 10^6), PAT only.
       Fig. 11: non-uniform keys (runs of 50), i15-d15-f70, range (0, 10^6).

   Absolute numbers depend on this machine (the paper used a 128-thread
   UltraSPARC T2+); what must reproduce is the *shape*: who scales, who
   collapses under contention, and who wins on clustered keys.

   Environment knobs (all optional):
     REPRO_SECONDS   seconds per timed trial        (default 0.3)
     REPRO_TRIALS    trials per data point          (default 2)
     REPRO_THREADS   comma-separated thread counts  (default "1,2,4")
     REPRO_LARGE     large key range                (default 1000000)
     REPRO_SMALL     small key range                (default 100)
     REPRO_ONLY      comma-separated sections to run
                     (fig8,fig9,fig10,fig11,scan,micro; default all)
     REPRO_SKIP_MICRO  set to skip the Bechamel suite
     REPRO_METRICS_JSON  path of a machine-readable metrics file; also
                     settable as `--metrics-json PATH`.  When set, every
                     data point additionally records latency percentiles,
                     PAT's contention counters and GC deltas, and the lot
                     is written as JSON (schema in EXPERIMENTS.md)
     REPRO_RECORD_STATS  enable PAT's sharded contention counters even
                     without a metrics file (they are per-domain, so the
                     perturbation is a branch + local fetch-and-add)
     REPRO_BACKOFF   set to 1 to enable bounded exponential backoff in
                     PAT's retry loops (default off: the paper's
                     algorithm has none; see EXPERIMENTS.md, "Fault
                     injection & progress") *)

let getenv_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let seconds = getenv_float "REPRO_SECONDS" 0.3
let trials = getenv_int "REPRO_TRIALS" 2
let large_range = getenv_int "REPRO_LARGE" 1_000_000
let small_range = getenv_int "REPRO_SMALL" 100

let threads_list =
  match Sys.getenv_opt "REPRO_THREADS" with
  | Some s -> String.split_on_char ',' s |> List.map int_of_string
  | None -> [ 1; 2; 4 ]

let sections =
  match Sys.getenv_opt "REPRO_ONLY" with
  | Some s -> String.split_on_char ',' s
  | None -> [ "fig8"; "fig9"; "fig10"; "fig11"; "scan"; "micro" ]

let enabled s = List.mem s sections

(* --metrics-json / --baseline-json on the command line win over the
   corresponding env knobs. *)
let argv_opt flag =
  let rec scan = function
    | f :: path :: _ when f = flag -> Some path
    | _ :: tl -> scan tl
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let metrics_path =
  match argv_opt "--metrics-json" with
  | Some _ as p -> p
  | None -> Sys.getenv_opt "REPRO_METRICS_JSON"

let metrics_on = metrics_path <> None

(* REPRO_BASELINE_JSON / --baseline-json: a compact machine-readable
   throughput baseline — one {figure, structure, threads, mean, stddev}
   record per data point, no latency/counters/GC — for the CI bench
   regression gate (test/compare_bench.ml against BENCH_1.json). *)
let baseline_path =
  match argv_opt "--baseline-json" with
  | Some _ as p -> p
  | None -> Sys.getenv_opt "REPRO_BASELINE_JSON"

let baseline_on = baseline_path <> None
let record_stats = metrics_on || Sys.getenv_opt "REPRO_RECORD_STATS" <> None

(* REPRO_BACKOFF=1 turns on bounded exponential backoff in PAT's retry
   loops (Chaos.Backoff).  Off by default: the paper's algorithm has no
   backoff, and the default figures must keep reproducing it as-is. *)
let () =
  match Sys.getenv_opt "REPRO_BACKOFF" with
  | Some ("" | "0") | None -> ()
  | Some _ -> Chaos.Backoff.set_enabled true

(* Swap PAT for its counter-enabled twin when stats are wanted; the
   other five structures have no internal counters to read. *)
let with_stats subjects =
  if record_stats then
    List.map
      (fun s ->
        if s.Harness.label = Core.Patricia.name then Harness.pat_subject_stats
        else s)
      subjects
  else subjects

let config threads =
  Harness.
    {
      threads;
      seconds;
      trials;
      warmup_seconds = min 0.2 (seconds /. 2.0);
      seed = 2013;
    }

(* ------------------------------------------------------------------ *)
(* Metrics-file assembly (see EXPERIMENTS.md, "Observability") *)

let metrics_acc : Obs.Json.t list ref = ref []
let baseline_acc : Obs.Json.t list ref = ref []

let sweep ~figure subjects workload =
  List.map
    (fun subject ->
      ( subject.Harness.label,
        List.map
          (fun threads ->
            let full =
              Harness.run_subject_full ~record_latency:metrics_on subject
                workload (config threads)
            in
            if metrics_on then
              metrics_acc :=
                Harness.datapoint_full_to_json ~section:figure
                  ~label:subject.Harness.label workload ~threads full
                :: !metrics_acc;
            if baseline_on then
              baseline_acc :=
                Obs.Json.Obj
                  [
                    ("figure", Obs.Json.Str figure);
                    ("structure", Obs.Json.Str subject.Harness.label);
                    ("threads", Obs.Json.Int threads);
                    ("mean_ops_s", Obs.Json.Float full.Harness.dp.Harness.mean);
                    ( "stddev_ops_s",
                      Obs.Json.Float full.Harness.dp.Harness.stddev );
                  ]
                :: !baseline_acc;
            (full.Harness.dp, Harness.descent_mean full.Harness.counters))
          threads_list ))
    (with_stats subjects)

let figure ~id ~title subjects workload =
  Format.printf "@.=== %s: %s ===@." id title;
  let rows = sweep ~figure:id subjects workload in
  Harness.pp_series Format.std_formatter
    ~title:
      (Printf.sprintf "%s, key range (0, %d), throughput in ops/s" title
         workload.Harness.universe)
    ~threads_list
    (List.map (fun (label, points) -> (label, List.map fst points)) rows);
  (* Descent-cost row (structures recording it, i.e. PAT under
     REPRO_RECORD_STATS / --metrics-json): mean nodes visited per
     search next to the throughput it explains. *)
  List.iter
    (fun (label, points) ->
      if List.exists (fun (_, d) -> d <> None) points then begin
        Format.printf "%-8s" label;
        List.iter
          (fun (_, d) ->
            match d with
            | Some m -> Format.printf "%14.2f" m
            | None -> Format.printf "%14s" "-")
          points;
        Format.printf "  (mean descent, nodes/search)@."
      end)
    rows;
  Format.print_flush ()

let () =
  Format.printf
    "Benchmarks for \"Non-blocking Patricia Tries with Replace Operations\"@.";
  Format.printf "threads=%s seconds/trial=%.2f trials=%d (cores available: %d)@."
    (String.concat "," (List.map string_of_int threads_list))
    seconds trials
    (Domain.recommended_domain_count ());
  if enabled "fig8" then begin
    figure ~id:"Figure 8 (top)" ~title:"uniform, i5-d5-f90"
      Harness.all_subjects
      Harness.{ universe = large_range; mix = Mix.i5_d5_f90; dist = Uniform };
    figure ~id:"Figure 8 (bottom)" ~title:"uniform, i50-d50-f0"
      Harness.all_subjects
      Harness.{ universe = large_range; mix = Mix.i50_d50_f0; dist = Uniform }
  end;
  if enabled "fig9" then begin
    figure ~id:"Figure 9 (top)" ~title:"uniform high contention, i5-d5-f90"
      Harness.all_subjects
      Harness.{ universe = small_range; mix = Mix.i5_d5_f90; dist = Uniform };
    figure ~id:"Figure 9 (bottom)" ~title:"uniform high contention, i50-d50-f0"
      Harness.all_subjects
      Harness.{ universe = small_range; mix = Mix.i50_d50_f0; dist = Uniform }
  end;
  if enabled "fig10" then
    figure ~id:"Figure 10" ~title:"replace operations, i10-d10-r80"
      [ Harness.pat_subject ]
      Harness.{ universe = large_range; mix = Mix.i10_d10_r80; dist = Uniform };
  if enabled "fig11" then
    figure ~id:"Figure 11" ~title:"non-uniform (runs of 50), i15-d15-f70"
      Harness.all_subjects
      Harness.
        { universe = large_range; mix = Mix.i15_d15_f70; dist = Clustered 50 }

(* ------------------------------------------------------------------ *)
(* Scan section: what a frozen view costs, as regression-gated
   datapoints (EXPERIMENTS.md, "What a frozen view costs").  Same
   {figure, structure, threads, mean_ops_s} shape as the figures so
   compare_bench gates them identically:

     "Scan (snapshot)"  the measured domain calling snapshot() in a
                        loop, threads-1 writers churning — calls/s
                        (the O(1) claim, watched for regression);
     "Scan (goodput)"   the measured domain folding whole frozen views,
                        threads-1 writers churning — keys/s;
     "Scan (writer)"    the measured domain churning writes with a
                        continuous whole-view scanner attached plus
                        threads-1 further writers — ops/s (the
                        copy-on-descent cost on the write path). *)

let scan_universe = 65_536

let scan_prefilled seed =
  let t = Core.Patricia.create ~universe:scan_universe () in
  let rng = Rng.of_int_seed seed in
  for _ = 1 to scan_universe / 2 do
    ignore (Core.Patricia.insert t (Rng.int rng scan_universe) : bool)
  done;
  t

let scan_churn t rng =
  let k = Rng.int rng scan_universe in
  match Rng.int rng 3 with
  | 0 -> ignore (Core.Patricia.insert t k : bool)
  | 1 -> ignore (Core.Patricia.delete t k : bool)
  | _ ->
      ignore
        (Core.Patricia.replace t ~remove:k ~add:(Rng.int rng scan_universe)
          : bool)

(* One sample: [step] (returning a unit count) runs on the main domain
   for ~[seconds] with [bg] churn domains and, when [scanner], a domain
   folding whole frozen views in a loop.  Side domains are joined before
   the sample is returned so trials don't bleed into each other. *)
let scan_rate ~bg ~scanner t step =
  let stop = Atomic.make false in
  let doms =
    List.init bg (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.of_int_seed (7000 + i) in
            while not (Atomic.get stop) do
              scan_churn t rng
            done))
    @
    if not scanner then []
    else
      [
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let v = Core.Patricia.snapshot t in
              ignore
                (Core.Patricia.View.fold v ~init:0 ~f:(fun n _ -> n + 1) : int)
            done);
      ]
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. seconds in
  let count = ref 0.0 in
  while Unix.gettimeofday () < deadline do
    count := !count +. step ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  List.iter Domain.join doms;
  !count /. elapsed

let scan_point ~figure:fig ~threads make =
  let samples =
    List.init trials (fun _ ->
        let t, bg, scanner, step = make () in
        scan_rate ~bg ~scanner t step)
  in
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let stddev =
    sqrt
      (List.fold_left (fun a x -> a +. ((x -. mean) *. (x -. mean))) 0.0 samples
      /. n)
  in
  Format.printf "%-16s threads=%d %14.0f /s (±%.0f)@." fig threads mean stddev;
  if baseline_on then
    baseline_acc :=
      Obs.Json.Obj
        [
          ("figure", Obs.Json.Str fig);
          ("structure", Obs.Json.Str "PAT");
          ("threads", Obs.Json.Int threads);
          ("mean_ops_s", Obs.Json.Float mean);
          ("stddev_ops_s", Obs.Json.Float stddev);
        ]
      :: !baseline_acc

let () =
  if enabled "scan" then begin
    Format.printf "@.=== Scan: what a frozen view costs ===@.";
    List.iter
      (fun threads ->
        scan_point ~figure:"Scan (snapshot)" ~threads (fun () ->
            let t = scan_prefilled 2013 in
            ( t,
              threads - 1,
              false,
              fun () ->
                for _ = 1 to 64 do
                  ignore (Core.Patricia.snapshot t)
                done;
                64.0 ));
        scan_point ~figure:"Scan (goodput)" ~threads (fun () ->
            let t = scan_prefilled 2014 in
            ( t,
              threads - 1,
              false,
              fun () ->
                let v = Core.Patricia.snapshot t in
                float_of_int
                  (Core.Patricia.View.fold v ~init:0 ~f:(fun n _ -> n + 1)) ));
        scan_point ~figure:"Scan (writer)" ~threads (fun () ->
            let t = scan_prefilled 2015 in
            let rng = Rng.of_int_seed 7919 in
            ( t,
              threads - 1,
              true,
              fun () ->
                scan_churn t rng;
                1.0 )))
      threads_list
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: single-threaded operation latency on a
   half-full structure of 2^16 keys — one test per structure and
   operation. *)

let micro_universe = 65_536

let make_cycle (subject : Harness.subject) =
  let ops = subject.Harness.make ~universe:micro_universe in
  let rng = Rng.of_int_seed 99 in
  Harness.prefill ops micro_universe rng;
  let cursor = ref 0 in
  fun () ->
    (* One insert, one member, one delete per run, on a rolling key. *)
    let k = !cursor in
    cursor := (k + 7919) land (micro_universe - 1);
    ignore (ops.Harness.insert k);
    ignore (ops.Harness.member ((k + 31) land (micro_universe - 1)));
    ignore (ops.Harness.delete k)

let micro_tests () =
  let open Bechamel in
  List.map
    (fun subject ->
      Test.make
        ~name:(subject.Harness.label ^ " ins+mem+del")
        (Staged.stage (make_cycle subject)))
    Harness.all_subjects

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  Format.printf "@.=== Micro: single-thread op latency (ns per ins+mem+del cycle) ===@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "%-24s %12.1f ns/cycle@." name est
          | _ -> Format.printf "%-24s (no estimate)@." name)
        analysis)
    (micro_tests ());
  Format.print_flush ()

let () =
  if enabled "micro" && Sys.getenv_opt "REPRO_SKIP_MICRO" = None then run_micro ()

(* ------------------------------------------------------------------ *)
(* Metrics file (written last so it reflects every section that ran) *)

let () =
  match metrics_path with
  | None -> ()
  | Some path ->
      let open Obs.Json in
      let doc =
        Obj
          [
            ("schema_version", Int 1);
            ("benchmark", Str "bench/main.exe");
            ( "config",
              Obj
                [
                  ("seconds_per_trial", Float seconds);
                  ("trials", Int trials);
                  ("threads", Arr (List.map (fun t -> Int t) threads_list));
                  ("large_range", Int large_range);
                  ("small_range", Int small_range);
                  ("sections", Arr (List.map (fun s -> Str s) sections));
                  ("record_stats", Bool record_stats);
                  ("backoff", Bool (Chaos.Backoff.enabled ()));
                  ("chaos_injection", Bool (Chaos.enabled ()));
                  ( "available_cores",
                    Int (Domain.recommended_domain_count ()) );
                ] );
            ("datapoints", Arr (List.rev !metrics_acc));
          ]
      in
      (match to_file path doc with
      | () ->
          Format.printf "@.metrics written to %s (%d datapoints)@." path
            (List.length !metrics_acc)
      | exception Sys_error m ->
          Format.eprintf "@.cannot write metrics file: %s@." m;
          exit 1)

let () =
  match baseline_path with
  | None -> ()
  | Some path ->
      let open Obs.Json in
      let doc =
        Obj
          [
            ("schema_version", Int 1);
            ("benchmark", Str "bench/main.exe");
            ( "config",
              Obj
                [
                  ("seconds_per_trial", Float seconds);
                  ("trials", Int trials);
                  ("threads", Arr (List.map (fun t -> Int t) threads_list));
                  ("large_range", Int large_range);
                  ("small_range", Int small_range);
                  ("seed", Int 2013);
                  ("available_cores", Int (Domain.recommended_domain_count ()));
                ] );
            ("datapoints", Arr (List.rev !baseline_acc));
          ]
      in
      (match to_file path doc with
      | () ->
          Format.printf "@.baseline written to %s (%d datapoints)@." path
            (List.length !baseline_acc)
      | exception Sys_error m ->
          Format.eprintf "@.cannot write baseline file: %s@." m;
          exit 1)
